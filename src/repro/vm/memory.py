"""Simulated flat 64-bit address space.

Pointers in the VM are plain integers, exactly as on real hardware.
This is essential for the reproduction: Low-Fat Pointers derive bounds
*from the pointer value* (region arithmetic), and integer/pointer casts
must round-trip without the VM noticing -- both impossible with opaque
pointer handles.

The address space is an interval map from address ranges to
:class:`Allocation` objects (each holding a bytearray).  An access that
falls entirely inside a live allocation succeeds -- even if it is
out-of-bounds *of the object the programmer meant*, which is how real
silent corruption works and why padding hides overflows from Low-Fat
Pointers.  An access that touches unmapped or freed memory raises
:class:`~repro.errors.MemoryFault` (the simulated segfault).

Layout (all constants in :data:`LAYOUT`):

* ``[0, 0x1000)`` -- the NULL page, never mapped.
* ``[GLOBALS_BASE, ...)`` -- global variables (below 2^32, so they are
  *not* low-fat: region index 0).
* ``[2^32, 28 * 2^32)`` -- the 27 Low-Fat regions for sizes 2^4..2^30
  (see :mod:`repro.lowfat.layout`).
* ``[HEAP_BASE, ...)`` -- the standard heap (region index way above the
  low-fat range -> non-low-fat).
* ``[... , STACK_TOP)`` -- the standard stack, growing down.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import MemoryFault, VMError

NULL_PAGE_END = 0x1000
GLOBALS_BASE = 0x0100_0000            # 16 MiB, below the low-fat regions
LOWFAT_BASE = 1 << 32
LOWFAT_END = 28 << 32
HEAP_BASE = 0x7000_0000_0000
STACK_TOP = 0x7FFF_FFFF_0000
STACK_LIMIT = 0x7FF0_0000_0000

ADDRESS_MASK = (1 << 64) - 1

#: Allocations at or above this size get sparse page-backed storage so
#: multi-gigabyte allocations (e.g. 429mcf's >1 GiB array) cost memory
#: proportional to the bytes actually touched.
SPARSE_THRESHOLD = 1 << 21


class SparsePages:
    """Page-sparse byte storage with bytearray-compatible slicing."""

    PAGE_SHIFT = 16
    PAGE_SIZE = 1 << PAGE_SHIFT

    def __init__(self, size: int):
        self.size = size
        self._pages: Dict[int, bytearray] = {}

    def __len__(self) -> int:
        return self.size

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(self.PAGE_SIZE)
            self._pages[index] = page
        return page

    def __getitem__(self, key):
        if isinstance(key, int):
            page = self._pages.get(key >> self.PAGE_SHIFT)
            return page[key & (self.PAGE_SIZE - 1)] if page else 0
        start, stop, _ = key.indices(self.size)
        out = bytearray()
        pos = start
        while pos < stop:
            index = pos >> self.PAGE_SHIFT
            offset = pos & (self.PAGE_SIZE - 1)
            take = min(self.PAGE_SIZE - offset, stop - pos)
            page = self._pages.get(index)
            if page is None:
                out.extend(bytes(take))
            else:
                out.extend(page[offset : offset + take])
            pos += take
        return bytes(out)

    def __setitem__(self, key, value) -> None:
        if isinstance(key, int):
            self._page(key >> self.PAGE_SHIFT)[key & (self.PAGE_SIZE - 1)] = value
            return
        start, stop, _ = key.indices(self.size)
        pos = start
        consumed = 0
        while pos < stop:
            index = pos >> self.PAGE_SHIFT
            offset = pos & (self.PAGE_SIZE - 1)
            take = min(self.PAGE_SIZE - offset, stop - pos)
            self._page(index)[offset : offset + take] = value[
                consumed : consumed + take
            ]
            pos += take
            consumed += take


@dataclass
class Allocation:
    """A contiguous mapped range of the address space."""

    base: int
    size: int
    kind: str                  # "global" | "stack" | "heap" | "lowfat"
    name: str = ""
    requested_size: int = 0    # pre-padding size (low-fat pads)
    freed: bool = False
    data: object = None        # bytearray or SparsePages

    def __post_init__(self) -> None:
        if self.data is None:
            if self.size >= SPARSE_THRESHOLD:
                self.data = SparsePages(self.size)
            else:
                self.data = bytearray(self.size)
        if self.requested_size == 0:
            self.requested_size = self.size

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " freed" if self.freed else ""
        return (
            f"<Allocation {self.name or self.kind} "
            f"[0x{self.base:x}, 0x{self.end:x}){state}>"
        )


class Memory:
    """Interval-mapped simulated memory."""

    def __init__(self) -> None:
        self._bases: List[int] = []
        self._allocs: List[Allocation] = []
        #: Last allocation a ``locate`` resolved to.  Accesses cluster
        #: heavily (loops walk one array at a time), so this answers
        #: most lookups without the bisect.  The entry is dropped on
        #: map/unmap; frees are caught by the ``freed`` guard.
        self._hot: Optional[Allocation] = None
        #: Bumped only when a *non-freed* allocation is unmapped -- the
        #: one event that can silently invalidate the compiled engine's
        #: per-site access caches.  A cached allocation that is still
        #: mapped and not freed owns its address range exclusively
        #: (``map`` rejects overlaps with live allocations), and every
        #: free is visible through the ``freed`` flag on the cached
        #: object itself, so caches stay valid across map/free/return
        #: without any epoch churn.
        self.epoch: int = 0

    # -- mapping -------------------------------------------------------
    def map(self, alloc: Allocation) -> Allocation:
        self._hot = None
        if alloc.base < NULL_PAGE_END:
            raise VMError(f"cannot map into the NULL page: 0x{alloc.base:x}")
        idx = bisect.bisect_right(self._bases, alloc.base)
        # Overlap checks against neighbours.
        if idx > 0:
            prev = self._allocs[idx - 1]
            if not prev.freed and prev.end > alloc.base:
                raise VMError(
                    f"mapping overlap: {alloc!r} overlaps {prev!r}"
                )
        if idx < len(self._allocs):
            nxt = self._allocs[idx]
            if not nxt.freed and alloc.end > nxt.base:
                raise VMError(f"mapping overlap: {alloc!r} overlaps {nxt!r}")
        self._bases.insert(idx, alloc.base)
        self._allocs.insert(idx, alloc)
        return alloc

    def unmap(self, alloc: Allocation) -> None:
        """Remove an allocation from the index entirely."""
        if self._hot is alloc:
            self._hot = None
        if not alloc.freed:
            # Unmapping live memory frees its range for reuse without
            # leaving a ``freed`` mark on the object: stale per-site
            # caches can only notice through the epoch.
            self.epoch += 1
        idx = bisect.bisect_left(self._bases, alloc.base)
        while idx < len(self._allocs):
            if self._allocs[idx] is alloc:
                del self._bases[idx]
                del self._allocs[idx]
                return
            if self._bases[idx] != alloc.base:
                break
            idx += 1
        raise VMError(f"unmap of unknown allocation {alloc!r}")

    def find(self, address: int) -> Optional[Allocation]:
        """The live allocation containing ``address``, or None."""
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx < 0:
            return None
        alloc = self._allocs[idx]
        if alloc.freed or address >= alloc.end:
            return None
        return alloc

    def locate(self, address: int, size: int, write: bool) -> Tuple[Allocation, int]:
        """Resolve an access; raise :class:`MemoryFault` if invalid."""
        alloc = self._hot
        if (
            alloc is not None
            and alloc.base <= address
            and address + size <= alloc.base + alloc.size
            and not alloc.freed
        ):
            # NULL-page accesses can never hit here: mapped bases are
            # always >= NULL_PAGE_END, so ``alloc.base <= address``
            # already excludes them.
            return alloc, address - alloc.base
        if address < NULL_PAGE_END:
            raise MemoryFault(address, size, "null pointer dereference")
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx >= 0:
            alloc = self._allocs[idx]
            base = alloc.base
            end = base + alloc.size
            if address < end:
                if alloc.freed:
                    raise MemoryFault(address, size, f"use after free of {alloc.name or alloc.kind}")
                if address + size > end:
                    raise MemoryFault(
                        address, size,
                        f"access straddles end of {alloc.name or alloc.kind} allocation",
                    )
                self._hot = alloc
                return alloc, address - base
        raise MemoryFault(address, size, "access to unmapped memory")

    # -- typed access ----------------------------------------------------
    def read_bytes(self, address: int, size: int) -> bytes:
        alloc, offset = self.locate(address, size, write=False)
        return bytes(alloc.data[offset : offset + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        alloc, offset = self.locate(address, len(data), write=True)
        alloc.data[offset : offset + len(data)] = data

    def read_int(self, address: int, size: int, signed: bool = False) -> int:
        alloc, offset = self.locate(address, size, write=False)
        if size == 1 and not signed:
            return alloc.data[offset]
        # int.from_bytes accepts the bytearray (or SparsePages bytes)
        # slice directly: no intermediate bytes() copy.
        return int.from_bytes(alloc.data[offset : offset + size], "little",
                              signed=signed)

    def write_int(self, address: int, value: int, size: int) -> None:
        alloc, offset = self.locate(address, size, write=True)
        if size == 1:
            alloc.data[offset] = value & 0xFF
            return
        value &= (1 << (8 * size)) - 1
        alloc.data[offset : offset + size] = value.to_bytes(size, "little")

    def read_float(self, address: int, size: int) -> float:
        alloc, offset = self.locate(address, size, write=False)
        data = alloc.data
        if type(data) is bytearray:
            return struct.unpack_from("<f" if size == 4 else "<d", data, offset)[0]
        return struct.unpack("<f" if size == 4 else "<d",
                             data[offset : offset + size])[0]

    def write_float(self, address: int, value: float, size: int) -> None:
        alloc, offset = self.locate(address, size, write=True)
        data = alloc.data
        if type(data) is bytearray:
            struct.pack_into("<f" if size == 4 else "<d", data, offset, value)
        else:
            data[offset : offset + size] = struct.pack(
                "<f" if size == 4 else "<d", value)

    # -- diagnostics --------------------------------------------------------
    def live_allocations(self) -> List[Allocation]:
        return [a for a in self._allocs if not a.freed]


class StandardAllocator:
    """The `malloc` substrate: a bump allocator over the heap segment.

    Freed blocks are tombstoned (kept mapped as ``freed``) so that
    use-after-free reliably faults instead of silently landing in a new
    allocation.  Spatial safety is the paper's topic; temporal realism
    beyond this is out of scope.
    """

    ALIGNMENT = 16

    def __init__(self, memory: Memory, base: int = HEAP_BASE):
        self.memory = memory
        self._cursor = base
        self._count = 0

    def malloc(self, size: int, name: str = "") -> Allocation:
        if size < 0:
            raise VMError(f"malloc of negative size {size}")
        padded = max(size, 1)
        alloc = Allocation(
            base=self._cursor,
            size=padded,
            kind="heap",
            name=name or f"heap#{self._count}",
            requested_size=size,
        )
        self._count += 1
        self._cursor += (padded + self.ALIGNMENT - 1) & ~(self.ALIGNMENT - 1)
        # Guard gap between heap allocations: linear overruns fault
        # instead of corrupting the neighbour, like a red zone of one
        # alignment unit.
        self._cursor += self.ALIGNMENT
        return self.memory.map(alloc)

    def free(self, address: int) -> None:
        if address == 0:
            return
        alloc = self.memory.find(address)
        if alloc is None or alloc.base != address:
            raise MemoryFault(address, 0, "free of invalid pointer")
        if alloc.kind not in ("heap", "lowfat"):
            raise MemoryFault(address, 0, f"free of non-heap pointer ({alloc.kind})")
        alloc.freed = True


class StackAllocator:
    """Call-stack allocation for ``alloca``.

    Frames are pushed/popped in sync with interpreted calls.  Popping a
    frame tombstones its allocations, so escaping stack pointers fault
    when dereferenced later.
    """

    ALIGNMENT = 16

    def __init__(self, memory: Memory, top: int = STACK_TOP):
        self.memory = memory
        self._cursor = top
        self._frames: List[List[Allocation]] = []
        self._cursor_stack: List[int] = []

    @property
    def depth(self) -> int:
        return len(self._frames)

    def push_frame(self) -> None:
        self._frames.append([])
        self._cursor_stack.append(self._cursor)

    def pop_frame(self) -> None:
        frame = self._frames.pop()
        for alloc in frame:
            alloc.freed = True
            self.memory.unmap(alloc)
        self._cursor = self._cursor_stack.pop()

    def alloca(self, size: int, name: str = "") -> Allocation:
        if not self._frames:
            raise VMError("alloca outside of a stack frame")
        padded = max((size + self.ALIGNMENT - 1) & ~(self.ALIGNMENT - 1), self.ALIGNMENT)
        # Guard gap, then the allocation (stack grows down).
        self._cursor -= padded + self.ALIGNMENT
        if self._cursor < STACK_LIMIT:
            raise VMError("simulated stack overflow")
        alloc = Allocation(
            base=self._cursor,
            size=size if size > 0 else 1,
            kind="stack",
            name=name,
            requested_size=size,
        )
        self._frames[-1].append(alloc)
        return self.memory.map(alloc)


class GlobalsAllocator:
    """Placement of global variables in the globals segment."""

    ALIGNMENT = 16

    def __init__(self, memory: Memory, base: int = GLOBALS_BASE):
        self.memory = memory
        self._cursor = base

    def allocate(self, size: int, name: str) -> Allocation:
        padded = max(size, 1)
        alloc = Allocation(
            base=self._cursor, size=padded, kind="global", name=name,
            requested_size=size,
        )
        self._cursor += (padded + self.ALIGNMENT - 1) & ~(self.ALIGNMENT - 1)
        self._cursor += self.ALIGNMENT  # guard gap
        return self.memory.map(alloc)

"""Mini-IR: an SSA intermediate representation in the style of LLVM 12.

Public surface:

* :mod:`repro.ir.types` -- the type system and data layout.
* :mod:`repro.ir.values` -- values, constants, use-def chains.
* :mod:`repro.ir.instructions` -- the instruction set.
* :mod:`repro.ir.module` -- basic blocks, functions, globals, modules,
  linking.
* :class:`repro.ir.IRBuilder` -- construction/rewriting API.
* :func:`repro.ir.verify_module` -- structural and SSA verification.
"""

from .builder import IRBuilder
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, GlobalVariable, Module
from .parser import parse_module
from .printer import format_function, format_instruction, format_module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    POINTER_BITS,
    POINTER_SIZE,
    VOID,
    align_of,
    ptr,
    size_of,
    struct_field_offset,
)
from .values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Use,
    User,
    Value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Alloca", "Argument", "ArrayType", "BasicBlock", "BinOp", "Br", "Call",
    "Cast", "CondBr", "Constant", "ConstantArray", "ConstantFloat",
    "ConstantInt", "ConstantNull", "ConstantString", "ConstantStruct",
    "ConstantZero", "F32", "F64", "FCmp", "FloatType", "Function",
    "FunctionType", "GEP", "GlobalVariable", "I1", "I16", "I32", "I64",
    "I8", "ICmp", "IRBuilder", "Instruction", "IntType", "Load", "Module",
    "POINTER_BITS", "POINTER_SIZE", "Phi", "PointerType", "Ret", "Select",
    "Store", "StructType", "Type", "UndefValue", "Unreachable", "Use",
    "User", "VOID", "Value", "VerificationError", "VoidType", "align_of",
    "format_function", "format_instruction", "format_module",
    "parse_module", "ptr",
    "size_of", "struct_field_offset", "verify_function", "verify_module",
]

"""Type system for the mini-IR.

The IR is typed in the style of LLVM 12 (typed pointers).  Types are
immutable value objects: two structurally equal types compare equal and
hash equally, so they can be used freely as dictionary keys.

Supported types:

* ``VoidType`` -- function return type only.
* ``IntType(bits)`` -- arbitrary-width integers (i1, i8, i16, i32, i64).
* ``FloatType(bits)`` -- 32- and 64-bit IEEE floats (f32/f64).
* ``PointerType(pointee)`` -- typed pointers; 64 bits wide.
* ``ArrayType(element, count)`` -- fixed-size arrays.
* ``StructType(name, fields)`` -- named or literal structs.
* ``FunctionType(ret, params, vararg)`` -- function signatures.

The module also implements the *data layout*: ``size_of`` and
``align_of`` compute in-memory sizes matching a conventional LP64
target, and ``struct_field_offset`` computes padded member offsets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

POINTER_SIZE = 8
POINTER_BITS = 64


class Type:
    """Base class of all IR types."""

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_int(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_aggregate(self) -> bool:
        return self.is_array() or self.is_struct()

    def is_first_class(self) -> bool:
        """First-class values can be produced by instructions."""
        return not self.is_void() and not self.is_function()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class VoidType(Type):
    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    def __init__(self, bits: int):
        if bits <= 0 or bits > 128:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def mask(self) -> int:
        """Bit mask covering the value range of this type."""
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1


class FloatType(Type):
    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))

    def __str__(self) -> str:
        return "f32" if self.bits == 32 else "f64"


class PointerType(Type):
    def __init__(self, pointee: Type):
        if pointee.is_void():
            # Use i8* for untyped memory, as C compilers do.
            raise ValueError("void* is not a valid IR type; use i8*")
        self.pointee = pointee

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    """A struct type.

    Named structs (``name`` set) compare by name, which permits
    recursive structs (e.g. linked-list nodes).  Literal structs
    (``name`` is None) compare structurally.
    """

    def __init__(self, name: Optional[str], fields: Sequence[Type] = ()):
        self.name = name
        self.fields: List[Type] = list(fields)

    def set_body(self, fields: Sequence[Type]) -> None:
        self.fields = list(fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructType):
            return False
        if self.name is not None or other.name is not None:
            return self.name == other.name
        return self.fields == other.fields

    def __hash__(self) -> int:
        if self.name is not None:
            return hash(("struct", self.name))
        return hash(("struct", tuple(self.fields)))

    def __str__(self) -> str:
        if self.name is not None:
            return f"%{self.name}"
        inner = ", ".join(str(f) for f in self.fields)
        return "{" + inner + "}"


class FunctionType(Type):
    def __init__(self, ret: Type, params: Sequence[Type], vararg: bool = False):
        self.ret = ret
        self.params: Tuple[Type, ...] = tuple(params)
        self.vararg = vararg

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params, self.vararg))

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"


# Commonly used singletons.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: Type) -> PointerType:
    """Shorthand constructor for pointer types."""
    return PointerType(pointee)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


def align_of(ty: Type) -> int:
    """ABI alignment of a type in bytes (LP64-style layout)."""
    if isinstance(ty, IntType):
        if ty.bits <= 8:
            return 1
        if ty.bits <= 16:
            return 2
        if ty.bits <= 32:
            return 4
        return 8
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return POINTER_SIZE
    if isinstance(ty, ArrayType):
        return align_of(ty.element)
    if isinstance(ty, StructType):
        if not ty.fields:
            return 1
        return max(align_of(f) for f in ty.fields)
    raise ValueError(f"type has no alignment: {ty}")


def size_of(ty: Type) -> int:
    """In-memory size of a type in bytes, including padding."""
    if isinstance(ty, IntType):
        if ty.bits == 1:
            return 1
        return _round_up(ty.bits, 8) // 8
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return POINTER_SIZE
    if isinstance(ty, ArrayType):
        return ty.count * size_of(ty.element)
    if isinstance(ty, StructType):
        offset = 0
        for field in ty.fields:
            offset = _round_up(offset, align_of(field)) + size_of(field)
        return _round_up(offset, align_of(ty)) if ty.fields else 0
    raise ValueError(f"type has no size: {ty}")


def struct_field_offset(ty: StructType, index: int) -> int:
    """Byte offset of struct field ``index``, with padding."""
    if index >= len(ty.fields):
        raise IndexError(f"struct {ty} has no field {index}")
    offset = 0
    for i, field in enumerate(ty.fields):
        offset = _round_up(offset, align_of(field))
        if i == index:
            return offset
        offset += size_of(field)
    raise AssertionError("unreachable")

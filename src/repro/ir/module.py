"""Containers of the mini-IR: basic blocks, functions, globals, modules.

A :class:`Module` corresponds to one *translation unit*.  Several
modules can be linked (``Module.link``) before or after instrumentation,
which lets the benchmark harness reproduce the paper's separate
compilation setup (Section 4.3: size-less extern array declarations are
only a problem when SoftBound instruments translation units separately).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .instructions import Instruction, Phi
from .types import ArrayType, FunctionType, PointerType, StructType, Type
from .values import Argument, Constant, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str = "", parent: Optional["Function"] = None):
        # Blocks have no first-class type; use a placeholder struct type
        # that is never queried.
        super().__init__(StructType("__label__"), name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- instruction management ---------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        assert inst.parent is None, "instruction already has a parent"
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        assert inst.parent is None, "instruction already has a parent"
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.index_of(anchor), inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.index_of(anchor) + 1, inst)

    def index_of(self, inst: Instruction) -> int:
        for i, candidate in enumerate(self.instructions):
            if candidate is inst:
                return i
        raise ValueError(f"instruction not in block {self.name}")

    def remove_instruction(self, inst: Instruction) -> None:
        del self.instructions[self.index_of(inst)]
        inst.parent = None

    # -- structure ------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.successors) if term is not None else []

    @property
    def predecessors(self) -> List["BasicBlock"]:
        assert self.parent is not None
        return [b for b in self.parent.blocks if self in b.successors]

    def phis(self) -> List[Phi]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def __iter__(self):
        return iter(list(self.instructions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function definition or declaration.

    ``native`` functions are implemented inside the VM (the runtime
    library and the C standard library subset); they have no blocks.
    ``attributes`` carries optimizer-relevant facts (``readonly``,
    ``readnone``, ``noreturn``) and instrumentation markers.
    """

    def __init__(
        self,
        name: str,
        fnty: FunctionType,
        module: Optional["Module"] = None,
        arg_names: Optional[Sequence[str]] = None,
    ):
        # As in LLVM, the function *value* has pointer-to-function type,
        # so functions can be stored into function-pointer slots and
        # passed as arguments.
        super().__init__(PointerType(fnty), name)
        self.module = module
        self.blocks: List[BasicBlock] = []
        self.attributes: Set[str] = set()
        self.native = False
        names = list(arg_names) if arg_names else [f"arg{i}" for i in range(len(fnty.params))]
        self.args: List[Argument] = [
            Argument(ty, names[i], i, self) for i, ty in enumerate(fnty.params)
        ]
        self._name_counter = itertools.count()

    @property
    def fnty(self) -> FunctionType:
        ty = self.type
        assert isinstance(ty, PointerType) and isinstance(ty.pointee, FunctionType)
        return ty.pointee

    @property
    def return_type(self) -> Type:
        return self.fnty.ret

    @property
    def is_declaration(self) -> bool:
        return not self.blocks and not self.native

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function @{self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        # Uniquify within the function: check-site identifiers
        # (``fn:block:index``) and the per-site profile/verdict joins
        # rely on block names not colliding (e.g. one ``for.body`` per
        # loop emitted by the frontend).
        if not name:
            name = self.next_name("bb")
        else:
            used = {b.name for b in self.blocks}
            if name in used:
                suffix = 1
                while f"{name}.{suffix}" in used:
                    suffix += 1
                name = f"{name}.{suffix}"
        block = BasicBlock(name, self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def next_name(self, prefix: str = "t") -> str:
        return f"{prefix}{next(self._name_counter)}"

    def instructions(self) -> Iterable[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __str__(self) -> str:
        from .printer import format_function

        return format_function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "native" if self.native else ("decl" if self.is_declaration else "def")
        return f"<Function @{self.name} [{kind}]>"


class GlobalVariable(Value):
    """A module-level variable.

    ``declared_without_size`` models C's ``extern int arr[];`` -- a
    declaration whose defining translation unit knows the size but this
    one does not (paper Section 4.3).  ``linkage`` distinguishes
    definitions, external declarations, and ``common`` symbols (which
    Low-Fat Pointers must convert to weak linkage, cf. the artifact flag
    ``-mi-lf-transform-common-to-weak-linkage``).
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[Constant] = None,
        linkage: str = "internal",
        declared_without_size: bool = False,
    ):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.linkage = linkage
        self.declared_without_size = declared_without_size
        self.module: Optional["Module"] = None

    @property
    def is_declaration(self) -> bool:
        return self.initializer is None and self.linkage == "external"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GlobalVariable @{self.name}: {self.value_type}>"


class Module:
    """One translation unit of IR."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.struct_types: Dict[str, StructType] = {}

    # -- functions -------------------------------------------------------
    def add_function(
        self,
        name: str,
        fnty: FunctionType,
        arg_names: Optional[Sequence[str]] = None,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"function @{name} already exists")
        fn = Function(name, fnty, self, arg_names)
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def get_or_declare_function(
        self, name: str, fnty: FunctionType, attributes: Iterable[str] = ()
    ) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            fn = self.add_function(name, fnty)
        fn.attributes.update(attributes)
        return fn

    def remove_function(self, name: str) -> None:
        del self.functions[name]

    # -- globals ---------------------------------------------------------
    def add_global(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[Constant] = None,
        linkage: str = "internal",
        declared_without_size: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"global @{name} already exists")
        gv = GlobalVariable(name, value_type, initializer, linkage, declared_without_size)
        gv.module = self
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        return self.globals.get(name)

    # -- struct types ------------------------------------------------------
    def get_or_create_struct(self, name: str) -> StructType:
        if name not in self.struct_types:
            self.struct_types[name] = StructType(name)
        return self.struct_types[name]

    # -- linking ----------------------------------------------------------
    @staticmethod
    def link(modules: Sequence["Module"], name: str = "linked") -> "Module":
        """Link translation units into one module.

        Declarations are resolved against definitions from other units.
        Size-less extern array declarations are resolved to the defining
        global (the *linker* knows the size -- this is why linking before
        instrumentation avoids SoftBound's size-less-array problem).
        """
        linked = Module(name)
        # First pass: definitions win over declarations.
        for mod in modules:
            for sname, sty in mod.struct_types.items():
                if sname not in linked.struct_types:
                    linked.struct_types[sname] = sty
            for gv in mod.globals.values():
                existing = linked.globals.get(gv.name)
                if existing is None:
                    linked.globals[gv.name] = gv
                elif existing.is_declaration and not gv.is_declaration:
                    existing.replace_all_uses_with(gv)
                    linked.globals[gv.name] = gv
                elif not existing.is_declaration and gv.is_declaration:
                    gv.replace_all_uses_with(existing)
                elif existing.is_declaration and gv.is_declaration:
                    gv.replace_all_uses_with(existing)
                else:
                    raise ValueError(f"duplicate global definition @{gv.name}")
            for fn in mod.functions.values():
                existing = linked.functions.get(fn.name)
                if existing is None:
                    linked.functions[fn.name] = fn
                elif existing.is_declaration and not fn.is_declaration:
                    existing.replace_all_uses_with(fn)
                    linked.functions[fn.name] = fn
                elif not existing.is_declaration and fn.is_declaration:
                    fn.replace_all_uses_with(existing)
                elif existing.is_declaration and fn.is_declaration:
                    fn.replace_all_uses_with(existing)
                elif existing.native or fn.native:
                    # Native runtime functions may be registered in
                    # several units; keep one.
                    continue
                else:
                    raise ValueError(f"duplicate function definition @{fn.name}")
        for fn in linked.functions.values():
            fn.module = linked
        for gv in linked.globals.values():
            gv.module = linked
        return linked

    def __str__(self) -> str:
        from .printer import format_module

        return format_module(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name}: {len(self.functions)} functions>"

"""IRBuilder: convenience API for constructing and rewriting IR.

Both the MiniC frontend and the instrumentation mechanisms build code
through this class.  The builder maintains an insertion point (a block
and an index into it) and provides one method per instruction, plus
constant factories and a few composite helpers (``gep_byte`` for raw
byte offsets, ``ptr_diff`` etc.).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function
from .types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    I1,
    I8,
    I32,
    I64,
)
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None):
        self._block: Optional[BasicBlock] = None
        self._index: int = 0
        #: When set, every inserted instruction is stamped with
        #: ``meta["line"]`` -- the frontend points this at the source
        #: line of the statement being lowered so diagnostics (e.g.
        #: ``repro lint``) can name real source locations.
        self.current_line: Optional[int] = None
        if block is not None:
            self.position_at_end(block)

    # -- insertion point ------------------------------------------------
    @property
    def block(self) -> BasicBlock:
        assert self._block is not None, "builder has no insertion point"
        return self._block

    @property
    def function(self) -> Function:
        fn = self.block.parent
        assert fn is not None
        return fn

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._index = len(block.instructions)

    def position_at_start(self, block: BasicBlock) -> None:
        self._block = block
        self._index = block.first_non_phi_index()

    def position_before(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self._block = inst.parent
        self._index = inst.parent.index_of(inst)

    def position_after(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self._block = inst.parent
        self._index = inst.parent.index_of(inst) + 1

    def insert(self, inst: Instruction) -> Instruction:
        self.block.insert(self._index, inst)
        self._index += 1
        if self.current_line is not None and "line" not in inst.meta:
            inst.meta["line"] = self.current_line
        return inst

    # -- constants --------------------------------------------------------
    def const_int(self, value: int, ty: IntType = I64) -> ConstantInt:
        return ConstantInt(ty, value)

    def const_i32(self, value: int) -> ConstantInt:
        return ConstantInt(I32, value)

    def const_i64(self, value: int) -> ConstantInt:
        return ConstantInt(I64, value)

    def const_float(self, value: float, ty: FloatType) -> ConstantFloat:
        return ConstantFloat(ty, value)

    def null(self, ty: PointerType) -> ConstantNull:
        return ConstantNull(ty)

    def undef(self, ty: Type) -> UndefValue:
        return UndefValue(ty)

    # -- memory -------------------------------------------------------------
    def alloca(self, ty: Type, count: Optional[Value] = None, name: str = "") -> Alloca:
        inst = Alloca(ty, count, name or self.function.next_name("a"))
        return self.insert(inst)  # type: ignore[return-value]

    def load(self, pointer: Value, name: str = "") -> Load:
        return self.insert(Load(pointer, name or self.function.next_name("l")))  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value) -> Store:
        return self.insert(Store(value, pointer))  # type: ignore[return-value]

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> GEP:
        return self.insert(GEP(pointer, indices, name or self.function.next_name("g")))  # type: ignore[return-value]

    def gep_index(self, pointer: Value, *indices: int, name: str = "") -> GEP:
        """GEP with all-constant i64 indices."""
        consts: List[Value] = [self.const_i64(i) for i in indices]
        return self.gep(pointer, consts, name)

    # -- SSA / selection -----------------------------------------------------
    def phi(self, ty: Type, name: str = "") -> Phi:
        inst = Phi(ty, name or self.function.next_name("p"))
        # Phis must be at the start of the block.
        self.block.insert(len(self.block.phis()), inst)
        if self._block is inst.parent:
            self._index += 1
        return inst

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Select:
        return self.insert(Select(cond, a, b, name or self.function.next_name("s")))  # type: ignore[return-value]

    # -- arithmetic -----------------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.insert(BinOp(op, lhs, rhs, name or self.function.next_name("v")))  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("lshr", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.insert(ICmp(pred, lhs, rhs, name or self.function.next_name("c")))  # type: ignore[return-value]

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self.insert(FCmp(pred, lhs, rhs, name or self.function.next_name("c")))  # type: ignore[return-value]

    # -- casts ---------------------------------------------------------------
    def cast(self, op: str, value: Value, dest: Type, name: str = "") -> Value:
        if value.type == dest and op == "bitcast":
            return value
        return self.insert(Cast(op, value, dest, name or self.function.next_name("x")))

    def ptrtoint(self, value: Value, dest: IntType = I64, name: str = "") -> Value:
        return self.cast("ptrtoint", value, dest, name)

    def inttoptr(self, value: Value, dest: PointerType, name: str = "") -> Value:
        return self.cast("inttoptr", value, dest, name)

    def bitcast(self, value: Value, dest: Type, name: str = "") -> Value:
        return self.cast("bitcast", value, dest, name)

    def zext(self, value: Value, dest: IntType, name: str = "") -> Value:
        return self.cast("zext", value, dest, name)

    def sext(self, value: Value, dest: IntType, name: str = "") -> Value:
        return self.cast("sext", value, dest, name)

    def trunc(self, value: Value, dest: IntType, name: str = "") -> Value:
        return self.cast("trunc", value, dest, name)

    # -- control flow ----------------------------------------------------------
    def br(self, target: BasicBlock) -> Br:
        return self.insert(Br(target))  # type: ignore[return-value]

    def cond_br(self, cond: Value, true_block: BasicBlock, false_block: BasicBlock) -> CondBr:
        return self.insert(CondBr(cond, true_block, false_block))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self.insert(Ret(value))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self.insert(Unreachable())  # type: ignore[return-value]

    # -- calls ------------------------------------------------------------------
    def call(self, callee: Value, args: Sequence[Value], name: str = "") -> Call:
        from .types import FunctionType, VoidType

        fnty = Call._callee_fnty(callee)
        auto = "" if isinstance(fnty.ret, VoidType) else (name or self.function.next_name("r"))
        return self.insert(Call(callee, args, auto))  # type: ignore[return-value]

"""IR verifier.

The verifier enforces the structural invariants that the optimizer and
the instrumentation passes rely on:

* every block ends in exactly one terminator, and terminators appear
  nowhere else;
* phi nodes are grouped at block starts and their incoming edges match
  the block's predecessors exactly;
* SSA dominance: every use of an instruction result is dominated by its
  definition;
* operand types are consistent (stores, calls, branches);
* instruction parent links are consistent.

It is run after the frontend, after every optimization pass when the
pipeline is in ``verify_each`` mode, and after instrumentation.
"""

from __future__ import annotations

from typing import List

from .instructions import (
    Call,
    CondBr,
    Instruction,
    Phi,
    Ret,
)
from .module import BasicBlock, Function, Module
from .types import FunctionType, VoidType


class VerificationError(Exception):
    """Raised when a module violates an IR invariant."""

    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_module(mod: Module) -> None:
    errors: List[str] = []
    for fn in mod.functions.values():
        if fn.is_declaration or fn.native:
            continue
        errors.extend(_verify_function(fn))
    if errors:
        raise VerificationError(errors)


def verify_function(fn: Function) -> None:
    errors = _verify_function(fn)
    if errors:
        raise VerificationError(errors)


def _verify_function(fn: Function) -> List[str]:
    errors: List[str] = []
    ctx = f"@{fn.name}"

    if not fn.blocks:
        return [f"{ctx}: function definition has no blocks"]

    for block in fn.blocks:
        if block.parent is not fn:
            errors.append(f"{ctx}/{block.name}: wrong block parent link")
        if not block.instructions:
            errors.append(f"{ctx}/{block.name}: empty basic block")
            continue
        term = block.instructions[-1]
        if not term.is_terminator():
            errors.append(f"{ctx}/{block.name}: block does not end in a terminator")
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                errors.append(f"{ctx}/{block.name}: bad parent link on '{inst}'")
            if inst.is_terminator() and i != len(block.instructions) - 1:
                errors.append(f"{ctx}/{block.name}: terminator in mid-block: '{inst}'")
            if isinstance(inst, Phi) and i >= block.first_non_phi_index():
                errors.append(f"{ctx}/{block.name}: phi after non-phi: '{inst}'")

        # Successor blocks must belong to the same function.
        for succ in block.successors:
            if succ.parent is not fn:
                errors.append(
                    f"{ctx}/{block.name}: branch to foreign block {succ.name}"
                )

    # Phi incoming edges must match predecessors.
    preds = {b: b.predecessors for b in fn.blocks}
    for block in fn.blocks:
        expected = preds[block]
        for phi in block.phis():
            incoming = phi.incoming_blocks
            if len(incoming) != len(set(id(b) for b in incoming)):
                errors.append(f"{ctx}/{block.name}: duplicate phi predecessor in '{phi}'")
            missing = [b.name for b in expected if b not in incoming]
            extra = [b.name for b in incoming if b not in expected]
            if missing:
                errors.append(
                    f"{ctx}/{block.name}: phi '{phi}' missing incoming for {missing}"
                )
            if extra:
                errors.append(
                    f"{ctx}/{block.name}: phi '{phi}' has stale incoming from {extra}"
                )

    # Return types.
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Ret):
            if term.value is None:
                if not isinstance(fn.return_type, VoidType):
                    errors.append(f"{ctx}: 'ret void' in non-void function")
            elif term.value.type != fn.return_type:
                errors.append(
                    f"{ctx}: return type mismatch: {term.value.type} vs {fn.return_type}"
                )

    # Call signatures.
    for inst in fn.instructions():
        if not isinstance(inst, Call):
            continue
        fnty = Call._callee_fnty(inst.callee)
        args = inst.args
        if len(args) < len(fnty.params) or (
            len(args) > len(fnty.params) and not fnty.vararg
        ):
            errors.append(f"{ctx}: call argument count mismatch in '{inst}'")
            continue
        for arg, param_ty in zip(args, fnty.params):
            if arg.type != param_ty:
                errors.append(
                    f"{ctx}: call argument type mismatch in '{inst}': "
                    f"{arg.type} vs {param_ty}"
                )

    # SSA dominance.  Imported lazily: the analysis package itself
    # imports the IR package, so a top-level import would be circular.
    from ..analysis.dominators import DominatorTree

    domtree = DominatorTree(fn)
    for block in fn.blocks:
        if not domtree.is_reachable(block):
            continue  # uses in unreachable code are not constrained
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                if isinstance(op, Instruction):
                    if op.parent is None:
                        errors.append(
                            f"{ctx}/{block.name}: use of erased instruction in '{inst}'"
                        )
                        continue
                    if op.parent.parent is not fn:
                        errors.append(
                            f"{ctx}/{block.name}: cross-function operand in '{inst}'"
                        )
                        continue
                    if not domtree.is_reachable(op.parent):
                        continue
                    if not domtree.value_dominates_use(op, inst, index):
                        errors.append(
                            f"{ctx}/{block.name}: use of '%{op.name}' in '{inst}' "
                            f"not dominated by its definition"
                        )
    return errors

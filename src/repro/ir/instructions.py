"""Instruction set of the mini-IR.

The instruction set mirrors the fragment of LLVM IR that the paper's
Table 1 operates on: memory access (``load``/``store``), allocation
(``alloca``), pointer arithmetic (``gep``), value selection
(``phi``/``select``), calls and returns, plus the scalar arithmetic,
comparison, cast and branch instructions needed to express real
programs.

Instruction operands use the :class:`~repro.ir.values.User` machinery,
so ``replace_all_uses_with`` works uniformly.  Branch targets and phi
incoming blocks are *block references* (not operands); CFG edits update
them explicitly.

Every instruction carries a ``meta`` dictionary.  The instrumentation
framework uses it to tag inserted code (e.g. ``meta["mi_check_id"]``)
and to mark accesses it has already handled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from .types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    I1,
    I64,
)
from .values import User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import BasicBlock, Function


class Instruction(User):
    """Base class of all instructions."""

    opcode: str = "<abstract>"

    def __init__(self, ty: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(ty, operands, name)
        self.parent: Optional["BasicBlock"] = None
        self.meta: Dict[str, object] = {}

    # -- position management ------------------------------------------
    def erase_from_parent(self) -> None:
        """Remove this instruction from its block and drop operands."""
        assert self.parent is not None, "instruction has no parent"
        self.parent.remove_instruction(self)
        self.drop_all_operands()

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    # -- classification ------------------------------------------------
    def is_terminator(self) -> bool:
        return isinstance(self, (Ret, Br, CondBr, Unreachable))

    def has_side_effects(self) -> bool:
        """Conservatively true if removing this instruction (when its
        value is unused) could change program behaviour."""
        if isinstance(self, (Store, Ret, Br, CondBr, Unreachable)):
            return True
        if isinstance(self, Call):
            return not self.is_pure_call()
        return False

    def may_read_memory(self) -> bool:
        if isinstance(self, Load):
            return True
        if isinstance(self, Call):
            return not self.callee_has_attribute("readnone")
        return False

    def may_write_memory(self) -> bool:
        if isinstance(self, Store):
            return True
        if isinstance(self, Call):
            return not (
                self.callee_has_attribute("readonly")
                or self.callee_has_attribute("readnone")
            )
        return False

    def __str__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)


# ---------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------


class Alloca(Instruction):
    """Stack allocation of ``allocated_type`` (times optional count)."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: Optional[Value] = None, name: str = ""):
        ops = [count] if count is not None else []
        super().__init__(PointerType(allocated_type), ops, name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None


class Load(Instruction):
    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        pty = pointer.type
        if not isinstance(pty, PointerType):
            raise TypeError(f"load requires a pointer operand, got {pty}")
        super().__init__(pty.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)


class Store(Instruction):
    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        pty = pointer.type
        if not isinstance(pty, PointerType):
            raise TypeError(f"store requires a pointer operand, got {pty}")
        if pty.pointee != value.type:
            raise TypeError(f"store type mismatch: {value.type} into {pty}")
        super().__init__(VoidType(), [value, pointer])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)


def gep_result_type(base: Type, indices: Sequence[Value]) -> Type:
    """Compute the pointee type a GEP with these indices produces."""
    if not isinstance(base, PointerType):
        raise TypeError(f"gep base must be a pointer, got {base}")
    current: Type = base.pointee
    for idx in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
        elif isinstance(current, StructType):
            from .values import ConstantInt

            if not isinstance(idx, ConstantInt):
                raise TypeError("struct gep index must be a constant int")
            current = current.fields[idx.value]
        else:
            raise TypeError(f"cannot index into {current}")
    return PointerType(current)


class GEP(Instruction):
    """``getelementptr`` -- pointer arithmetic over a typed layout."""

    opcode = "gep"

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "", inbounds: bool = True):
        result = gep_result_type(pointer.type, list(indices))
        super().__init__(result, [pointer, *indices], name)
        self.inbounds = inbounds

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return [self.operand(i) for i in range(1, self.num_operands)]


# ---------------------------------------------------------------------
# SSA / selection
# ---------------------------------------------------------------------


class Phi(Instruction):
    opcode = "phi"

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, [], name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(f"phi incoming type mismatch: {value.type} vs {self.type}")
        self.append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[tuple]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.remove_operand(i)
                del self.incoming_blocks[i]
                return
        raise KeyError(f"phi has no incoming edge from {block.name}")


class Select(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        if cond.type != I1:
            raise TypeError("select condition must be i1")
        if true_value.type != false_value.type:
            raise TypeError("select arm types differ")
        super().__init__(true_value.type, [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


# ---------------------------------------------------------------------
# Arithmetic / comparison / casts
# ---------------------------------------------------------------------

INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "frem"}
BINOPS = INT_BINOPS | FLOAT_BINOPS


class BinOp(Instruction):
    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINOPS:
            raise ValueError(f"unknown binary op: {op}")
        if lhs.type != rhs.type:
            raise TypeError(f"binop operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


ICMP_PREDICATES = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
FCMP_PREDICATES = {
    # ordered: false if either operand is NaN
    "oeq", "one", "olt", "ole", "ogt", "oge", "ord",
    # unordered: true if either operand is NaN
    "ueq", "une", "ult", "ule", "ugt", "uge", "uno",
}

#: Evaluation of every fcmp predicate with IEEE-754/LLVM NaN semantics,
#: shared by both execution engines and the constant folder.  Written
#: with plain comparisons only: ``x < y`` / ``x > y`` are already false
#: when either side is NaN, and ``x != x`` is the NaN test, so no
#: ``math.isnan`` call is needed on the hot path.
FCMP_EVAL = {
    "oeq": lambda a, b: 1 if a == b else 0,
    "ogt": lambda a, b: 1 if a > b else 0,
    "oge": lambda a, b: 1 if a >= b else 0,
    "olt": lambda a, b: 1 if a < b else 0,
    "ole": lambda a, b: 1 if a <= b else 0,
    "one": lambda a, b: 1 if (a < b or a > b) else 0,
    "ord": lambda a, b: 1 if (a == a and b == b) else 0,
    "ueq": lambda a, b: 0 if (a < b or a > b) else 1,
    "ugt": lambda a, b: 0 if a <= b else 1,
    "uge": lambda a, b: 0 if a < b else 1,
    "ult": lambda a, b: 0 if a >= b else 1,
    "ule": lambda a, b: 0 if a > b else 1,
    "une": lambda a, b: 1 if a != b else 0,
    "uno": lambda a, b: 1 if (a != a or b != b) else 0,
}


class ICmp(Instruction):
    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError("icmp operand types differ")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class FCmp(Instruction):
    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError("fcmp operand types differ")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


CAST_OPS = {
    "trunc", "zext", "sext",
    "fptrunc", "fpext", "fptosi", "sitofp", "fptoui", "uitofp",
    "ptrtoint", "inttoptr", "bitcast",
}


class Cast(Instruction):
    def __init__(self, op: str, value: Value, dest: Type, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast op: {op}")
        super().__init__(dest, [value], name)
        self.opcode = op

    @property
    def value(self) -> Value:
        return self.operand(0)


# ---------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------


class Ret(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        ops = [value] if value is not None else []
        super().__init__(VoidType(), ops)

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    @property
    def successors(self) -> List["BasicBlock"]:
        return []


class Br(Instruction):
    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VoidType(), [])
        self.target = target

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new


class CondBr(Instruction):
    opcode = "condbr"

    def __init__(self, cond: Value, true_block: "BasicBlock", false_block: "BasicBlock"):
        if cond.type != I1:
            raise TypeError("conditional branch condition must be i1")
        super().__init__(VoidType(), [cond])
        self.true_block = true_block
        self.false_block = false_block

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.true_block, self.false_block]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.true_block is old:
            self.true_block = new
        if self.false_block is old:
            self.false_block = new


class Unreachable(Instruction):
    opcode = "unreachable"

    def __init__(self):
        super().__init__(VoidType(), [])

    @property
    def successors(self) -> List["BasicBlock"]:
        return []


# ---------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------


class Call(Instruction):
    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = ""):
        fnty = Call._callee_fnty(callee)
        super().__init__(fnty.ret, [callee, *args], name)

    @staticmethod
    def _callee_fnty(callee: Value) -> FunctionType:
        ty = callee.type
        if isinstance(ty, FunctionType):
            return ty
        if isinstance(ty, PointerType) and isinstance(ty.pointee, FunctionType):
            return ty.pointee
        raise TypeError(f"call target is not a function: {ty}")

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def args(self) -> List[Value]:
        return [self.operand(i) for i in range(1, self.num_operands)]

    @property
    def callee_function(self):
        """The statically known callee, or None for indirect calls."""
        from .module import Function

        target = self.callee
        return target if isinstance(target, Function) else None

    def callee_has_attribute(self, attr: str) -> bool:
        fn = self.callee_function
        return fn is not None and attr in fn.attributes

    def is_pure_call(self) -> bool:
        """True if the call can be removed when its result is unused.

        Possibly-aborting calls (memory-safety checks) are never pure,
        even when they read no memory: removing one would silence the
        abort."""
        if self.callee_has_attribute("may_abort") or self.callee_has_attribute(
            "noreturn"
        ):
            return False
        return self.callee_has_attribute("readnone") or self.callee_has_attribute(
            "readonly"
        )

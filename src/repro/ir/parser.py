"""Parser for the mini-IR's textual form.

Round-trips with :mod:`repro.ir.printer`: ``parse_module(format_module(m))``
reconstructs an equivalent module.  Used by tests and for writing IR
fixtures by hand; the frontend does not go through text.

Grammar (line oriented)::

    ; comments
    %name = type {T, ...}
    @name = <linkage> [nosize] global T <initializer>
    @name = external [nosize] global T
    declare[-native] RT @name(T %a, ...) [attrs]
    define RT @name(T %a, ...) [attrs] {
    label:
      %x = <instruction>
      ...
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import CompileError
from .instructions import (
    Alloca,
    BINOPS,
    BinOp,
    Br,
    Call,
    CAST_OPS,
    Cast,
    CondBr,
    FCMP_PREDICATES,
    FCmp,
    GEP,
    ICMP_PREDICATES,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, GlobalVariable, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantZero,
    UndefValue,
    Value,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<string>c"(?:[^"\\]|\\[0-9a-fA-F]{2})*") |
    (?P<name>[%@][A-Za-z0-9._$-]+) |
    (?P<float>-?\d+\.\d+(e[+-]?\d+)?|-?\binf\b|-?\bnan\b) |
    (?P<int>-?\d+) |
    (?P<word>[A-Za-z_][A-Za-z0-9_.-]*) |
    (?P<punct>\.\.\.|[{}\[\]()=,*:;]) |
    (?P<space>\s+)
    """,
    re.VERBOSE,
)


def _tokenize_line(line: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(line):
        match = _TOKEN_RE.match(line, pos)
        if match is None:
            raise CompileError(f"cannot tokenize IR: {line[pos:pos+20]!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "space":
            continue
        text = match.group()
        if kind == "punct" and text == ";":
            break  # comment to end of line
        tokens.append(text)
    return tokens


class _LineParser:
    """Parses one tokenized line with a tiny cursor API."""

    def __init__(self, tokens: List[str], module_parser: "ModuleParser"):
        self.tokens = tokens
        self.pos = 0
        self.mp = module_parser

    @property
    def current(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.current
        if token is None:
            raise CompileError("unexpected end of IR line")
        self.pos += 1
        return token

    def accept(self, token: str) -> bool:
        if self.current == token:
            self.pos += 1
            return True
        return False

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise CompileError(f"expected {token!r} in IR, found {got!r}")

    def at_type(self) -> bool:
        token = self.current
        if token is None:
            return False
        if token in ("void",) or re.fullmatch(r"i\d+|f32|f64", token):
            return True
        if token in ("[", "{"):
            return True
        return token.startswith("%") and token[1:] in self.mp.struct_types

    # -- types -----------------------------------------------------------
    def parse_type(self) -> Type:
        token = self.next()
        base: Type
        if token == "void":
            base = VOID
        elif re.fullmatch(r"i\d+", token):
            base = IntType(int(token[1:]))
        elif token in ("f32", "f64"):
            base = FloatType(32 if token == "f32" else 64)
        elif token == "[":
            count = int(self.next())
            self.expect("x")
            element = self.parse_type()
            self.expect("]")
            base = ArrayType(element, count)
        elif token == "{":
            fields = []
            if self.current != "}":
                fields.append(self.parse_type())
                while self.accept(","):
                    fields.append(self.parse_type())
            self.expect("}")
            base = StructType(None, fields)
        elif token.startswith("%"):
            base = self.mp.get_struct(token[1:])
        else:
            raise CompileError(f"unknown IR type token {token!r}")
        while self.accept("*"):
            base = PointerType(base)
        return base

    # -- values -----------------------------------------------------------
    def parse_value(self, ty: Type) -> Value:
        token = self.next()
        if token.startswith("%"):
            return self.mp.local(token[1:], ty)
        if token.startswith("@"):
            return self.mp.global_ref(token[1:])
        if token == "null":
            assert isinstance(ty, PointerType)
            return ConstantNull(ty)
        if token == "undef":
            return UndefValue(ty)
        if token == "zeroinitializer":
            return ConstantZero(ty)
        if token.startswith('c"'):
            return ConstantString(_decode_string(token[2:-1]))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(token))
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(token))
        raise CompileError(f"cannot parse constant {token!r} of type {ty}")

    def parse_typed_value(self) -> Value:
        ty = self.parse_type()
        return self.parse_value(ty)


def _decode_string(body: str) -> bytes:
    out = bytearray()
    i = 0
    while i < len(body):
        if body[i] == "\\":
            out.append(int(body[i + 1 : i + 3], 16))
            i += 3
        else:
            out.append(ord(body[i]))
            i += 1
    # printer appends the NUL explicitly; ConstantString re-adds one
    if out and out[-1] == 0:
        del out[-1]
    return bytes(out)


class ModuleParser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.index = 0
        self.module = Module("parsed")
        self.struct_types: Dict[str, StructType] = {}
        # per-function state
        self.locals: Dict[str, Value] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        self.pending_fixups: List[Tuple[object, int, str, Type]] = []

    # -- module-level -----------------------------------------------------
    def parse(self) -> Module:
        while self.index < len(self.lines):
            line = self.lines[self.index].strip()
            self.index += 1
            if not line or line.startswith(";"):
                continue
            tokens = _tokenize_line(line)
            if not tokens:
                continue
            if tokens[0].startswith("%") and len(tokens) > 2 and tokens[2] == "type":
                self._parse_struct_def(tokens)
            elif tokens[0].startswith("@"):
                self._parse_global(tokens)
            elif tokens[0] in ("declare", "declare-native"):
                self._parse_declaration(tokens)
            elif tokens[0] == "define":
                self._parse_definition(tokens, line)
            else:
                raise CompileError(f"cannot parse IR line: {line!r}")
        return self.module

    def get_struct(self, name: str) -> StructType:
        sty = self.struct_types.get(name)
        if sty is None:
            sty = self.module.get_or_create_struct(name)
            self.struct_types[name] = sty
        return sty

    def _parse_struct_def(self, tokens: List[str]) -> None:
        name = tokens[0][1:]
        lp = _LineParser(tokens[3:], self)  # skip "%name = type"
        lp.expect("{")
        fields = []
        if lp.current != "}":
            fields.append(lp.parse_type())
            while lp.accept(","):
                fields.append(lp.parse_type())
        lp.expect("}")
        self.get_struct(name).set_body(fields)

    def _parse_global(self, tokens: List[str]) -> None:
        name = tokens[0][1:]
        lp = _LineParser(tokens[2:], self)  # skip "@name ="
        linkage = lp.next()
        nosize = lp.accept("nosize")
        lp.expect("global")
        value_type = lp.parse_type()
        initializer = None
        if linkage != "external" and lp.current is not None:
            initializer = lp.parse_value(value_type)
        self.module.add_global(name, value_type, initializer, linkage, nosize)

    def _parse_signature(self, lp: _LineParser):
        ret = lp.parse_type()
        name_token = lp.next()
        if not name_token.startswith("@"):
            raise CompileError(f"expected function name, got {name_token!r}")
        lp.expect("(")
        params: List[Type] = []
        arg_names: List[str] = []
        vararg = False
        if lp.current != ")":
            while True:
                if lp.accept("..."):
                    vararg = True
                    break
                params.append(lp.parse_type())
                token = lp.current
                if token is not None and token.startswith("%"):
                    arg_names.append(lp.next()[1:])
                else:
                    arg_names.append(f"arg{len(params) - 1}")
                if not lp.accept(","):
                    break
        lp.expect(")")
        attrs = set()
        while lp.current is not None and lp.current not in ("{",):
            attrs.add(lp.next())
        return name_token[1:], FunctionType(ret, params, vararg), arg_names, attrs

    def _parse_declaration(self, tokens: List[str]) -> None:
        native = tokens[0] == "declare-native"
        lp = _LineParser(tokens[1:], self)
        name, fnty, arg_names, attrs = self._parse_signature(lp)
        fn = self.module.get_or_declare_function(name, fnty, attrs)
        fn.native = native
        if arg_names:
            for arg, arg_name in zip(fn.args, arg_names):
                arg.name = arg_name

    def _parse_definition(self, tokens: List[str], line: str) -> None:
        lp = _LineParser(tokens[1:], self)
        name, fnty, arg_names, attrs = self._parse_signature(lp)
        fn = self.module.add_function(name, fnty, arg_names)
        fn.attributes.update(attrs)
        self.locals = {a.name: a for a in fn.args}
        self.blocks = {}
        self.pending_fixups = []
        body: List[str] = []
        while self.index < len(self.lines):
            inner = self.lines[self.index].strip()
            self.index += 1
            if inner == "}":
                break
            if inner and not inner.startswith(";"):
                body.append(inner)
        # First pass: create blocks.
        current_label = None
        grouped: List[Tuple[str, List[str]]] = []
        for inner in body:
            if inner.endswith(":") and " " not in inner:
                current_label = inner[:-1]
                block = BasicBlock(current_label, fn)
                fn.blocks.append(block)
                self.blocks[current_label] = block
                grouped.append((current_label, []))
            else:
                if not grouped:
                    raise CompileError(f"instruction before label in @{name}")
                grouped[-1][1].append(inner)
        # Second pass: instructions.
        for label, lines in grouped:
            block = self.blocks[label]
            for inst_line in lines:
                inst = self._parse_instruction(inst_line)
                block.append(inst)
        # Resolve forward references.
        for user, idx, ref, ty in self.pending_fixups:
            if ref not in self.locals:
                raise CompileError(f"undefined local %{ref} in @{name}")
            user.set_operand(idx, self.locals[ref])

    def local(self, name: str, ty: Type) -> Value:
        value = self.locals.get(name)
        if value is not None:
            return value
        # Forward reference: create a placeholder undef; fixed up later.
        placeholder = UndefValue(ty)
        placeholder.name = f"__fwd_{name}"
        self._forward_refs.setdefault(name, []).append(placeholder)
        return placeholder

    def global_ref(self, name: str) -> Value:
        gv = self.module.get_global(name)
        if gv is not None:
            return gv
        fn = self.module.get_function(name)
        if fn is not None:
            return fn
        raise CompileError(f"undefined global @{name}")

    # -- instructions -------------------------------------------------------
    _forward_refs: Dict[str, List[UndefValue]] = {}

    def _parse_instruction(self, line: str):
        self._forward_refs = {}
        tokens = _tokenize_line(line)
        result_name = None
        if len(tokens) > 1 and tokens[0].startswith("%") and tokens[1] == "=":
            result_name = tokens[0][1:]
            tokens = tokens[2:]
        lp = _LineParser(tokens, self)
        opcode = lp.next()
        inst = self._build(opcode, lp)
        if result_name is not None:
            inst.name = result_name
            self.locals[result_name] = inst
        # Patch forward references created while parsing this line.
        for ref, placeholders in self._forward_refs.items():
            for placeholder in placeholders:
                for i in range(inst.num_operands):
                    if inst.operand(i) is placeholder:
                        self.pending_fixups.append((inst, i, ref, placeholder.type))
        return inst

    def _build(self, opcode: str, lp: _LineParser):
        if opcode == "alloca":
            allocated = lp.parse_type()
            count = None
            if lp.accept(","):
                lp.expect("count")
                count = lp.parse_typed_value()
            return Alloca(allocated, count)
        if opcode == "load":
            lp.parse_type()  # result type (redundant)
            lp.expect(",")
            pointer = lp.parse_typed_value()
            return Load(pointer)
        if opcode == "store":
            value = lp.parse_typed_value()
            lp.expect(",")
            pointer = lp.parse_typed_value()
            return Store(value, pointer)
        if opcode == "gep":
            pointer = lp.parse_typed_value()
            indices = []
            while lp.accept(","):
                indices.append(lp.parse_typed_value())
            return GEP(pointer, indices)
        if opcode == "phi":
            ty = lp.parse_type()
            phi = Phi(ty)
            while lp.accept("["):
                value = lp.parse_value(ty)
                lp.expect(",")
                label = lp.next()[1:]
                lp.expect("]")
                phi.add_incoming(value, self._block_ref(label))
                lp.accept(",")
            return phi
        if opcode == "select":
            cond = lp.parse_typed_value()
            lp.expect(",")
            a = lp.parse_typed_value()
            lp.expect(",")
            b = lp.parse_typed_value()
            return Select(cond, a, b)
        if opcode in BINOPS:
            ty = lp.parse_type()
            lhs = lp.parse_value(ty)
            lp.expect(",")
            rhs = lp.parse_value(ty)
            return BinOp(opcode, lhs, rhs)
        if opcode == "icmp":
            pred = lp.next()
            if pred not in ICMP_PREDICATES:
                raise CompileError(f"bad icmp predicate {pred!r}")
            ty = lp.parse_type()
            lhs = lp.parse_value(ty)
            lp.expect(",")
            rhs = lp.parse_value(ty)
            return ICmp(pred, lhs, rhs)
        if opcode == "fcmp":
            pred = lp.next()
            if pred not in FCMP_PREDICATES:
                raise CompileError(f"bad fcmp predicate {pred!r}")
            ty = lp.parse_type()
            lhs = lp.parse_value(ty)
            lp.expect(",")
            rhs = lp.parse_value(ty)
            return FCmp(pred, lhs, rhs)
        if opcode in CAST_OPS:
            value = lp.parse_typed_value()
            lp.expect("to")
            dest = lp.parse_type()
            return Cast(opcode, value, dest)
        if opcode == "ret":
            if lp.current == "void":
                return Ret()
            return Ret(lp.parse_typed_value())
        if opcode == "br":
            # unconditional: "br %target"; conditional: "br i1 %c, %t, %f"
            remaining = len(lp.tokens) - lp.pos
            if remaining == 1:
                return Br(self._block_ref(lp.next()[1:]))
            cond = lp.parse_typed_value()
            lp.expect(",")
            t = self._block_ref(lp.next()[1:])
            lp.expect(",")
            f = self._block_ref(lp.next()[1:])
            return CondBr(cond, t, f)
        if opcode == "unreachable":
            return Unreachable()
        if opcode == "call":
            lp.parse_type()  # return type (redundant)
            callee = self.global_ref(lp.next()[1:])
            lp.expect("(")
            args = []
            if lp.current != ")":
                args.append(lp.parse_typed_value())
                while lp.accept(","):
                    args.append(lp.parse_typed_value())
            lp.expect(")")
            return Call(callee, args)
        raise CompileError(f"unknown IR opcode {opcode!r}")

    def _block_ref(self, label: str) -> BasicBlock:
        block = self.blocks.get(label)
        if block is None:
            raise CompileError(f"undefined block label %{label}")
        return block


def parse_module(text: str) -> Module:
    """Parse the printer's textual form back into a module."""
    return ModuleParser(text).parse()

"""Value hierarchy for the mini-IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, basic blocks (as branch targets), global objects and
other instructions.  Values track their users, which enables
``replace_all_uses_with`` -- the workhorse of the optimizer and the
instrumentation passes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TYPE_CHECKING

from .types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover
    from .instructions import Instruction


class Use:
    """A single operand slot of a user referencing a value."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name
        self.uses: List[Use] = []

    # -- use tracking -------------------------------------------------
    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        # Identity-based removal: a user may reference the same value
        # through several operand slots.
        for i, u in enumerate(self.uses):
            if u is use:
                del self.uses[i]
                return
        raise ValueError(f"use not found on {self!r}")

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def users(self) -> Iterable["User"]:
        """All users, deduplicated, in first-use order."""
        seen = set()
        for use in self.uses:
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def replace_all_uses_with(self, new: "Value") -> None:
        if new is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, new)

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.short_name()}: {self.type}>"


class User(Value):
    """A value that references other values through operands."""

    def __init__(self, ty: Type, operands: Iterable[Value], name: str = ""):
        super().__init__(ty, name)
        self._operands: List[Value] = []
        self._uses: List[Use] = []
        for op in operands:
            self.append_operand(op)

    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self._uses[index])
        self._operands[index] = value
        value.add_use(self._uses[index])

    def append_operand(self, value: Value) -> None:
        use = Use(self, len(self._operands))
        self._operands.append(value)
        self._uses.append(use)
        value.add_use(use)

    def remove_operand(self, index: int) -> None:
        self._operands[index].remove_use(self._uses[index])
        del self._operands[index]
        del self._uses[index]
        for i in range(index, len(self._uses)):
            self._uses[i].index = i

    def drop_all_operands(self) -> None:
        """Detach this user from all operands (used when erasing)."""
        while self._operands:
            self.remove_operand(len(self._operands) - 1)


# ---------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------


class Constant(Value):
    """Base class of compile-time constant values."""


class ConstantInt(Constant):
    def __init__(self, ty: IntType, value: int):
        super().__init__(ty)
        # Store the canonical unsigned representation.
        self.value = value & ty.mask

    @property
    def signed_value(self) -> int:
        ty = self.type
        assert isinstance(ty, IntType)
        if self.value > ty.max_signed:
            return self.value - (1 << ty.bits)
        return self.value

    def is_zero(self) -> bool:
        return self.value == 0

    def __str__(self) -> str:
        return str(self.signed_value)


class ConstantFloat(Constant):
    def __init__(self, ty: FloatType, value: float):
        super().__init__(ty)
        self.value = float(value)

    def __str__(self) -> str:
        return repr(self.value)


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    def __init__(self, ty: PointerType):
        super().__init__(ty)

    def __str__(self) -> str:
        return "null"


class UndefValue(Constant):
    """An unspecified value of a first-class type."""

    def __str__(self) -> str:
        return "undef"


class ConstantZero(Constant):
    """A zero-initializer for any type (LLVM's ``zeroinitializer``)."""

    def __str__(self) -> str:
        return "zeroinitializer"


class ConstantArray(Constant):
    def __init__(self, ty: ArrayType, elements: Iterable[Constant]):
        super().__init__(ty)
        self.elements: List[Constant] = list(elements)
        if len(self.elements) != ty.count:
            raise ValueError("constant array length mismatch")

    def __str__(self) -> str:
        inner = ", ".join(f"{e.type} {e}" for e in self.elements)
        return f"[{inner}]"


class ConstantStruct(Constant):
    def __init__(self, ty: StructType, fields: Iterable[Constant]):
        super().__init__(ty)
        self.fields: List[Constant] = list(fields)
        if len(self.fields) != len(ty.fields):
            raise ValueError("constant struct field count mismatch")

    def __str__(self) -> str:
        inner = ", ".join(f"{f.type} {f}" for f in self.fields)
        return "{" + inner + "}"


class ConstantString(Constant):
    """A NUL-terminated byte string constant (for string literals)."""

    def __init__(self, data: bytes):
        ty = ArrayType(IntType(8), len(data) + 1)
        super().__init__(ty)
        self.data = data + b"\x00"

    def __str__(self) -> str:
        printable = self.data.decode("latin-1")
        escaped = "".join(
            c if 32 <= ord(c) < 127 and c not in '"\\' else f"\\{ord(c):02x}"
            for c in printable
        )
        return f'c"{escaped}"'


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: Type, name: str, index: int, parent=None):
        super().__init__(ty, name)
        self.index = index
        self.parent = parent

    def __str__(self) -> str:
        return f"%{self.name}"

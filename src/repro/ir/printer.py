"""Textual printer for the mini-IR.

Produces an LLVM-flavoured textual form that is round-trippable through
:mod:`repro.ir.parser`.  The printer is also used for ``__str__`` on
instructions, functions, and modules, which makes failing tests easy to
read.
"""

from __future__ import annotations

from typing import Dict

from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, GlobalVariable, Module
from .types import FunctionType, VoidType
from .values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Value,
)


def _value_ref(value: Value) -> str:
    """Render a value as an operand reference."""
    if isinstance(value, (Function, GlobalVariable)):
        return f"@{value.name}"
    if isinstance(value, Constant):
        return str(value)
    if isinstance(value, BasicBlock):
        return f"%{value.name}"
    return f"%{value.name}"


def _typed_ref(value: Value) -> str:
    return f"{value.type} {_value_ref(value)}"


def format_instruction(inst: Instruction) -> str:
    def result_prefix() -> str:
        if isinstance(inst.type, VoidType):
            return ""
        return f"%{inst.name} = "

    if isinstance(inst, Alloca):
        count = f", count {_typed_ref(inst.count)}" if inst.count is not None else ""
        return f"{result_prefix()}alloca {inst.allocated_type}{count}"
    if isinstance(inst, Load):
        return f"{result_prefix()}load {inst.type}, {_typed_ref(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_typed_ref(inst.value)}, {_typed_ref(inst.pointer)}"
    if isinstance(inst, GEP):
        idx = ", ".join(_typed_ref(i) for i in inst.indices)
        return f"{result_prefix()}gep {_typed_ref(inst.pointer)}, {idx}"
    if isinstance(inst, Phi):
        arms = ", ".join(
            f"[{_value_ref(v)}, %{b.name}]" for v, b in inst.incoming
        )
        return f"{result_prefix()}phi {inst.type} {arms}"
    if isinstance(inst, Select):
        return (
            f"{result_prefix()}select {_typed_ref(inst.condition)}, "
            f"{_typed_ref(inst.true_value)}, {_typed_ref(inst.false_value)}"
        )
    if isinstance(inst, BinOp):
        return f"{result_prefix()}{inst.opcode} {inst.type} {_value_ref(inst.lhs)}, {_value_ref(inst.rhs)}"
    if isinstance(inst, ICmp):
        return f"{result_prefix()}icmp {inst.predicate} {inst.lhs.type} {_value_ref(inst.lhs)}, {_value_ref(inst.rhs)}"
    if isinstance(inst, FCmp):
        return f"{result_prefix()}fcmp {inst.predicate} {inst.lhs.type} {_value_ref(inst.lhs)}, {_value_ref(inst.rhs)}"
    if isinstance(inst, Cast):
        return f"{result_prefix()}{inst.opcode} {_typed_ref(inst.value)} to {inst.type}"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {_typed_ref(inst.value)}"
    if isinstance(inst, Br):
        return f"br %{inst.target.name}"
    if isinstance(inst, CondBr):
        return f"br {_typed_ref(inst.condition)}, %{inst.true_block.name}, %{inst.false_block.name}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    if isinstance(inst, Call):
        args = ", ".join(_typed_ref(a) for a in inst.args)
        fnty = Call._callee_fnty(inst.callee)
        return f"{result_prefix()}call {fnty.ret} {_value_ref(inst.callee)}({args})"
    raise ValueError(f"cannot print instruction: {inst!r}")


def _assign_names(fn: Function) -> None:
    """Ensure all values and blocks in the function have unique names."""
    seen: Dict[str, int] = {}

    def uniquify(name: str) -> str:
        if name not in seen:
            seen[name] = 0
            return name
        seen[name] += 1
        return f"{name}.{seen[name]}"

    for arg in fn.args:
        arg.name = uniquify(arg.name or f"arg{arg.index}")
    for block in fn.blocks:
        block.name = uniquify(block.name or "bb")
    counter = 0
    for inst in fn.instructions():
        if isinstance(inst.type, VoidType):
            continue
        if not inst.name:
            inst.name = f"v{counter}"
            counter += 1
        inst.name = uniquify(inst.name)


def format_function(fn: Function) -> str:
    fnty = fn.fnty
    params = ", ".join(f"{a.type} %{a.name or a.index}" for a in fn.args)
    if fnty.vararg:
        params = f"{params}, ..." if params else "..."
    attrs = (" " + " ".join(sorted(fn.attributes))) if fn.attributes else ""
    header = f"{fnty.ret} @{fn.name}({params}){attrs}"
    if fn.native:
        return f"declare-native {header}"
    if fn.is_declaration:
        return f"declare {header}"
    _assign_names(fn)
    lines = [f"define {header} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def format_global(gv: GlobalVariable) -> str:
    size_note = " nosize" if gv.declared_without_size else ""
    if gv.initializer is None:
        return f"@{gv.name} = external{size_note} global {gv.value_type}"
    return f"@{gv.name} = {gv.linkage}{size_note} global {gv.value_type} {gv.initializer}"


def format_module(mod: Module) -> str:
    lines = [f"; module {mod.name}"]
    for name, sty in sorted(mod.struct_types.items()):
        fields = ", ".join(str(f) for f in sty.fields)
        lines.append(f"%{name} = type {{{fields}}}")
    for gv in mod.globals.values():
        lines.append(format_global(gv))
    # Declarations first, so the text parses in one forward pass.
    ordered = sorted(
        mod.functions.values(), key=lambda f: not (f.is_declaration or f.native)
    )
    for fn in ordered:
        lines.append("")
        lines.append(format_function(fn))
    return "\n".join(lines) + "\n"

"""Interprocedural value-range and pointer-provenance analysis.

Two abstract domains ride on the :mod:`.dataflow` engine:

* **Integer ranges** -- each integer SSA value gets a signed interval
  ``[lo, hi]`` in its own bit width.  Arithmetic transfer functions
  are *wrap-sound*: any operation whose exact interval leaves the
  representable range degrades to the full type range instead of
  pretending wrap-around cannot happen.  Branch conditions refine the
  interval per CFG edge (``i < n`` bounds ``i`` inside the loop body),
  and widening at loop headers guarantees termination.

* **Pointer provenance** -- each pointer SSA value gets a
  ``(allocation site, byte-offset interval)`` fact.  Sites are
  allocas, sized globals, and calls to the allocation entry points of
  the instrumented runtimes (``malloc``/``calloc``/``realloc`` and
  their SoftBound/Low-Fat replacements) with constant sizes.  ``gep``
  accumulates byte offsets through the typed layout, ``phi``/``select``
  join, ``bitcast`` passes through, and everything else (arguments,
  loads from escaping memory, ``inttoptr``) is unknown.  For
  *non-escaping* stack slots the analysis additionally tracks the
  slot's current content through ``load``/``store``, so a pointer
  parked in a local survives with its provenance.

The analysis is interprocedural in the lightweight summary sense: a
:class:`ReturnSummaries` object computes, bottom-up over the call
graph, the return-value range of every integer-returning function, and
call transfer consults it (recursive cycles degrade to top).

The facts feed two clients: the ``range_filter`` check elimination in
:mod:`repro.core.filters` (a dereference provably inside its
allocation needs no dynamic check) and the ``mi-lint`` pitfall
detectors in :mod:`.lint`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function, GlobalVariable, Module
from ..ir.types import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    size_of,
    struct_field_offset,
)
from ..ir.values import Argument, ConstantInt, Value
from .dataflow import INFEASIBLE, DataflowClient, ForwardDataflow, State

#: Allocation entry points whose first (or, for calloc, product of
#: first two) argument is the allocation size in bytes.  Includes the
#: renamed runtime entry points because the mechanisms redirect
#: allocator calls *before* target gathering runs.
ALLOCATION_FUNCTIONS = {
    "malloc": "malloc",
    "realloc": "realloc",
    "calloc": "calloc",
    "__sb_wrap_malloc": "malloc",
    "__sb_wrap_realloc": "realloc",
    "__sb_wrap_calloc": "calloc",
    "__lf_malloc": "malloc",
    "__lf_realloc": "realloc",
    "__lf_calloc": "calloc",
    "__lf_alloca": "malloc",
}


# ---------------------------------------------------------------------
# the integer interval domain
# ---------------------------------------------------------------------


class IntRange:
    """A signed interval ``[lo, hi]`` of an integer type."""

    __slots__ = ("bits", "lo", "hi")

    def __init__(self, bits: int, lo: int, hi: int):
        self.bits = bits
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------
    @staticmethod
    def full(bits: int) -> "IntRange":
        return IntRange(bits, -(1 << (bits - 1)), (1 << (bits - 1)) - 1)

    @staticmethod
    def const(bits: int, value: int) -> "IntRange":
        return IntRange(bits, value, value)

    @staticmethod
    def of_constant(c: ConstantInt) -> "IntRange":
        ty = c.type
        assert isinstance(ty, IntType)
        return IntRange.const(ty.bits, c.signed_value)

    # -- queries --------------------------------------------------------
    @property
    def type_min(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def type_max(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def is_full(self) -> bool:
        return self.lo <= self.type_min and self.hi >= self.type_max

    def is_constant(self) -> bool:
        return self.lo == self.hi

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, IntRange) and other.bits == self.bits
                and other.lo == self.lo and other.hi == self.hi)

    def __hash__(self) -> int:
        return hash((self.bits, self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"i{self.bits}[{self.lo}, {self.hi}]"

    # -- lattice --------------------------------------------------------
    def clamped(self) -> Optional["IntRange"]:
        """Wrap-soundness: an interval that leaves the representable
        range degrades to the *full* range (the value may have wrapped
        anywhere).  Returns None for the full range (= top)."""
        if self.lo < self.type_min or self.hi > self.type_max:
            return None
        return self

    def join(self, other: "IntRange") -> Optional["IntRange"]:
        if other.bits != self.bits:
            return None
        return IntRange(self.bits, min(self.lo, other.lo),
                        max(self.hi, other.hi)).clamped()

    def widen(self, newer: "IntRange") -> Optional["IntRange"]:
        """Push every unstable bound to the type bound."""
        lo = self.lo if newer.lo >= self.lo else self.type_min
        hi = self.hi if newer.hi <= self.hi else self.type_max
        return IntRange(self.bits, lo, hi).clamped()

    def intersect(self, lo: Optional[int], hi: Optional[int]) -> "IntRange":
        new_lo = self.lo if lo is None else max(self.lo, lo)
        new_hi = self.hi if hi is None else min(self.hi, hi)
        return IntRange(self.bits, new_lo, new_hi)

    @property
    def empty(self) -> bool:
        return self.lo > self.hi


def _binop_range(op: str, a: IntRange, b: IntRange) -> Optional[IntRange]:
    """Transfer function for integer binary operations; None = top."""
    bits = a.bits
    if op == "add":
        return IntRange(bits, a.lo + b.lo, a.hi + b.hi).clamped()
    if op == "sub":
        return IntRange(bits, a.lo - b.hi, a.hi - b.lo).clamped()
    if op == "mul":
        corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        return IntRange(bits, min(corners), max(corners)).clamped()
    if op == "and":
        # x & C with C >= 0 lands in [0, C] for any x (two's complement).
        if b.is_constant() and b.lo >= 0:
            return IntRange(bits, 0, b.lo)
        if a.is_constant() and a.lo >= 0:
            return IntRange(bits, 0, a.lo)
        if a.lo >= 0 and b.lo >= 0:
            return IntRange(bits, 0, min(a.hi, b.hi))
        return None
    if op == "or" or op == "xor":
        # Bitwise or/xor of values in [0, 2^k) stays in [0, 2^k).
        if a.lo >= 0 and b.lo >= 0:
            width = max(a.hi, b.hi).bit_length()
            return IntRange(bits, 0, (1 << width) - 1).clamped()
        return None
    if op in ("srem", "urem"):
        # x rem n with constant n > 0: result in (-n, n); non-negative
        # x gives [0, n-1].  (urem additionally needs x >= 0 so the
        # unsigned and signed views agree.)
        if b.is_constant() and b.lo > 0:
            n = b.lo
            if a.lo >= 0:
                return IntRange(bits, 0, min(n - 1, a.hi))
            if op == "srem":
                return IntRange(bits, -(n - 1), n - 1)
        return None
    if op in ("sdiv", "udiv"):
        if b.is_constant() and b.lo > 0 and a.lo >= 0:
            return IntRange(bits, a.lo // b.lo, a.hi // b.lo)
        return None
    if op == "shl":
        if b.is_constant() and 0 <= b.lo < bits:
            return IntRange(bits, a.lo << b.lo, a.hi << b.lo).clamped()
        return None
    if op in ("lshr", "ashr"):
        if b.is_constant() and 0 <= b.lo < bits:
            if a.lo >= 0:
                return IntRange(bits, a.lo >> b.lo, a.hi >> b.lo)
            if op == "ashr":
                return IntRange(bits, a.lo >> b.lo, a.hi >> b.lo)
        return None
    return None


# ---------------------------------------------------------------------
# the pointer provenance domain
# ---------------------------------------------------------------------


class PtrFact:
    """Provenance of a pointer: allocation site + byte-offset interval.

    ``site`` is the IR object that allocated the storage (an
    :class:`Alloca`, a sized :class:`GlobalVariable`, or an allocator
    :class:`Call`); ``size`` is the allocation size in bytes when it
    is a compile-time constant, else None; ``offset`` is the signed
    64-bit interval of byte offsets from the allocation base."""

    __slots__ = ("site", "size", "offset")

    def __init__(self, site: Value, size: Optional[int], offset: IntRange):
        self.site = site
        self.size = size
        self.offset = offset

    def shifted(self, delta: IntRange) -> Optional["PtrFact"]:
        offset = _binop_range("add", self.offset, delta)
        if offset is None:
            return None
        return PtrFact(self.site, self.size, offset)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PtrFact) and other.site is self.site
                and other.size == self.size and other.offset == self.offset)

    def __hash__(self) -> int:
        return hash((id(self.site), self.size, self.offset))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        site = getattr(self.site, "name", "?") or type(self.site).__name__
        return f"<{site}+{self.offset} of {self.size}>"

    def join(self, other: "PtrFact") -> Optional["PtrFact"]:
        if other.site is not self.site or other.size != self.size:
            return None
        offset = self.offset.join(other.offset)
        if offset is None:
            return None
        return PtrFact(self.site, self.size, offset)

    def widen(self, newer: "PtrFact") -> Optional["PtrFact"]:
        if newer.site is not self.site:
            return None
        offset = self.offset.widen(newer.offset)
        if offset is None:
            return None
        return PtrFact(self.site, self.size, offset)

    def proves_in_bounds(self, width: int) -> bool:
        """Whether an access of ``width`` bytes through this pointer is
        in bounds on *every* execution."""
        return (self.size is not None
                and self.offset.lo >= 0
                and self.offset.hi + width <= self.size)

    def proves_out_of_bounds(self, width: int) -> bool:
        """Whether the access is out of bounds on every execution.

        A strictly negative offset is out of bounds no matter the
        allocation size; overrunning the end needs the size."""
        if self.offset.hi < 0:
            return True
        return self.size is not None and self.offset.lo + width > self.size


def _constant_int(value: Value, depth: int = 0) -> Optional[int]:
    """Signed value of a constant expression: folds int casts and
    add/sub/mul of constants (the frontend emits ``mul i64 4, (sext
    i32 8 to i64)`` for ``malloc(sizeof(int) * 8)``)."""
    if depth > 8:
        return None
    if isinstance(value, ConstantInt):
        return value.signed_value
    if isinstance(value, Cast) and value.opcode in ("sext", "zext",
                                                    "trunc"):
        return _constant_int(value.value, depth + 1)
    if isinstance(value, BinOp) and value.opcode in ("add", "sub", "mul"):
        lhs = _constant_int(value.lhs, depth + 1)
        rhs = _constant_int(value.rhs, depth + 1)
        if lhs is None or rhs is None:
            return None
        if value.opcode == "add":
            return lhs + rhs
        if value.opcode == "sub":
            return lhs - rhs
        return lhs * rhs
    return None


def allocation_size(call: Call) -> Optional[int]:
    """Constant allocation size of an allocator call, else None."""
    callee = call.callee_function
    if callee is None:
        return None
    kind = ALLOCATION_FUNCTIONS.get(callee.name)
    if kind is None:
        return None
    args = call.args
    if kind == "calloc":
        if len(args) >= 2:
            count = _constant_int(args[0])
            unit = _constant_int(args[1])
            if count is not None and unit is not None:
                return count * unit
        return None
    index = 1 if kind == "realloc" else 0
    if len(args) > index:
        size = _constant_int(args[index])
        if size is not None and size >= 0:
            return size
    return None


def is_allocation_call(inst: Instruction) -> bool:
    if not isinstance(inst, Call):
        return False
    callee = inst.callee_function
    return callee is not None and callee.name in ALLOCATION_FUNCTIONS


def global_size(gv: GlobalVariable) -> Optional[int]:
    """Byte size of a global as *this translation unit* knows it --
    None for size-less extern declarations (paper Section 4.3)."""
    if gv.declared_without_size:
        return None
    return size_of(gv.value_type)


# ---------------------------------------------------------------------
# escape analysis for stack slots
# ---------------------------------------------------------------------


def non_escaping_slots(fn: Function) -> Dict[int, Alloca]:
    """Allocas whose address is only ever used as the direct operand
    of whole-slot loads and stores (never stored, passed, cast, or
    offset).  Their content can be tracked flow-sensitively: no callee
    or aliasing pointer can reach them."""
    slots: Dict[int, Alloca] = {}
    for block in fn.blocks:
        for inst in block.instructions:
            if not isinstance(inst, Alloca):
                continue
            if inst.count is not None:
                continue
            ok = True
            for user in inst.users():
                if isinstance(user, Load) and user.pointer is inst:
                    continue
                if isinstance(user, Store) and user.pointer is inst \
                        and user.value is not inst:
                    continue
                ok = False
                break
            if ok:
                slots[id(inst)] = inst
    return slots


# ---------------------------------------------------------------------
# interprocedural return summaries
# ---------------------------------------------------------------------


class ReturnSummaries:
    """Bottom-up return-range summaries over the module call graph.

    ``range_for(fn)`` is the interval covering every value ``fn`` can
    return, or None when unknown (non-integer return, native/declared
    functions, recursion)."""

    def __init__(self, module: Optional[Module] = None):
        self.module = module
        self._cache: Dict[int, Optional[IntRange]] = {}
        self._in_progress: set = set()

    def range_for(self, fn: Function) -> Optional[IntRange]:
        key = id(fn)
        if key in self._cache:
            return self._cache[key]
        if key in self._in_progress:
            return None  # recursion: degrade to top
        if fn.native or fn.is_declaration:
            self._cache[key] = None
            return None
        if not isinstance(fn.return_type, IntType):
            self._cache[key] = None
            return None
        self._in_progress.add(key)
        try:
            summary = self._compute(fn)
        finally:
            self._in_progress.discard(key)
        self._cache[key] = summary
        return summary

    def _compute(self, fn: Function) -> Optional[IntRange]:
        analysis = FunctionRangeAnalysis(fn, summaries=self)
        result: Optional[IntRange] = None
        for block, state in analysis.block_out_states():
            term = block.terminator
            if not isinstance(term, Ret) or term.value is None:
                continue
            fact = analysis.client.value_fact(term.value, state)
            if not isinstance(fact, IntRange):
                return None
            result = fact if result is None else result.join(fact)
            if result is None:
                return None
        return result


# ---------------------------------------------------------------------
# the dataflow client
# ---------------------------------------------------------------------


def _vkey(value: Value) -> Tuple[str, int]:
    return ("v", id(value))


def _mkey(slot: Alloca) -> Tuple[str, int]:
    return ("m", id(slot))


class RangeClient(DataflowClient):
    """Combined integer-range + pointer-provenance transfer."""

    def __init__(self, fn: Function,
                 summaries: Optional[ReturnSummaries] = None):
        self.fn = fn
        self.summaries = summaries
        self.slots = non_escaping_slots(fn)

    # -- fact lookup ----------------------------------------------------
    def value_fact(self, value: Value, state: State):
        """Best-known fact for ``value`` at the given state; None=top."""
        if isinstance(value, ConstantInt):
            return IntRange.of_constant(value)
        known = state.get(_vkey(value))
        if known is not None:
            return known
        if isinstance(value, GlobalVariable):
            return PtrFact(value, global_size(value), IntRange.const(64, 0))
        return None

    def int_fact(self, value: Value, state: State) -> Optional[IntRange]:
        fact = self.value_fact(value, state)
        return fact if isinstance(fact, IntRange) else None

    def ptr_fact(self, value: Value, state: State) -> Optional[PtrFact]:
        fact = self.value_fact(value, state)
        return fact if isinstance(fact, PtrFact) else None

    # -- engine hooks ---------------------------------------------------
    def keep_unmatched_key(self, key: object) -> bool:
        # Memory facts only survive a merge when every incoming edge
        # agrees; SSA facts are per-value and may pass through.
        return not (isinstance(key, tuple) and key[0] == "m")

    def join_fact(self, a: object, b: object) -> Optional[object]:
        if isinstance(a, IntRange) and isinstance(b, IntRange):
            return a.join(b)
        if isinstance(a, PtrFact) and isinstance(b, PtrFact):
            return a.join(b)
        return None

    def widen_fact(self, old: object, new: object) -> Optional[object]:
        if isinstance(old, IntRange) and isinstance(new, IntRange):
            return old.widen(new)
        if isinstance(old, PtrFact) and isinstance(new, PtrFact):
            return old.widen(new)
        return None

    def phi_incoming_fact(self, phi: Phi, value: Value,
                          state: State) -> Optional[object]:
        return self.value_fact(value, state)

    def transfer(self, inst: Instruction, state: State) -> None:
        key = _vkey(inst)
        fact = self._compute_fact(inst, state)
        if fact is None:
            state.pop(key, None)
        else:
            state[key] = fact
        self._memory_effects(inst, state)

    # -- per-instruction facts ------------------------------------------
    def _compute_fact(self, inst: Instruction, state: State):
        if isinstance(inst, Alloca):
            count = 1
            if inst.count is not None:
                if not isinstance(inst.count, ConstantInt):
                    return PtrFact(inst, None, IntRange.const(64, 0))
                count = inst.count.signed_value
            return PtrFact(inst, size_of(inst.allocated_type) * count,
                           IntRange.const(64, 0))
        if isinstance(inst, GEP):
            base = self.ptr_fact(inst.pointer, state)
            if base is None:
                return None
            delta = self._gep_offset(inst, state)
            if delta is None:
                return None
            return base.shifted(delta)
        if isinstance(inst, BinOp):
            if not isinstance(inst.type, IntType):
                return None
            a = self.int_fact(inst.lhs, state)
            b = self.int_fact(inst.rhs, state)
            bits = inst.type.bits
            a = a or IntRange.full(bits)
            b = b or IntRange.full(bits)
            result = _binop_range(inst.opcode, a, b)
            if result is not None and result.is_full():
                return None
            return result
        if isinstance(inst, Cast):
            return self._cast_fact(inst, state)
        if isinstance(inst, Select):
            a = self.value_fact(inst.true_value, state)
            b = self.value_fact(inst.false_value, state)
            if a is None or b is None:
                return None
            return self.join_fact(a, b)
        if isinstance(inst, Load):
            slot = self.slots.get(id(inst.pointer))
            if slot is not None:
                return state.get(_mkey(slot))
            return None
        if isinstance(inst, Call):
            return self._call_fact(inst, state)
        if isinstance(inst, ICmp):
            return None  # i1; edges consume the condition instead
        return None

    def _cast_fact(self, inst: Cast, state: State):
        op = inst.opcode
        if op == "bitcast":
            if isinstance(inst.type, PointerType):
                return self.ptr_fact(inst.value, state)
            return None
        if op not in ("sext", "zext", "trunc"):
            return None  # ptrtoint/inttoptr/float casts: top
        src = self.int_fact(inst.value, state)
        if src is None:
            src_ty = inst.value.type
            if not isinstance(src_ty, IntType):
                return None
            src = IntRange.full(src_ty.bits)
        assert isinstance(inst.type, IntType)
        bits = inst.type.bits
        if op == "sext":
            return IntRange(bits, src.lo, src.hi)
        if op == "zext":
            if src.lo >= 0:
                return IntRange(bits, src.lo, src.hi)
            # Negative sources reinterpret as large unsigned values.
            return IntRange(bits, 0, (1 << src.bits) - 1).clamped()
        # trunc keeps the range only when it already fits the new type.
        return IntRange(bits, src.lo, src.hi).clamped()

    def _call_fact(self, inst: Call, state: State):
        size = allocation_size(inst)
        if is_allocation_call(inst):
            return PtrFact(inst, size, IntRange.const(64, 0))
        if isinstance(inst.type, IntType) and self.summaries is not None:
            callee = inst.callee_function
            if callee is not None:
                summary = self.summaries.range_for(callee)
                if summary is not None and summary.bits == inst.type.bits:
                    return summary
        return None

    def _gep_offset(self, gep: GEP, state: State) -> Optional[IntRange]:
        """Byte-offset interval a GEP adds, through the typed layout."""
        pointer_ty = gep.pointer.type
        assert isinstance(pointer_ty, PointerType)
        current = pointer_ty.pointee
        total = IntRange.const(64, 0)
        for position, index in enumerate(gep.indices):
            if position == 0:
                scale = size_of(current)
            elif isinstance(current, ArrayType):
                current = current.element
                scale = size_of(current)
            elif isinstance(current, StructType):
                if not isinstance(index, ConstantInt):
                    return None
                offset = struct_field_offset(current, index.value)
                current = current.fields[index.value]
                total = _binop_range(
                    "add", total, IntRange.const(64, offset))
                if total is None:
                    return None
                continue
            else:
                return None
            index_range = self._index_range(index, state)
            if index_range is None:
                return None
            step = _binop_range(
                "mul", index_range, IntRange.const(64, scale))
            if step is None:
                return None
            total = _binop_range("add", total, step)
            if total is None:
                return None
        return total

    def _index_range(self, index: Value, state: State) -> Optional[IntRange]:
        if isinstance(index, ConstantInt):
            return IntRange.const(64, index.signed_value)
        fact = self.int_fact(index, state)
        if fact is None:
            return None
        # Indices are used in 64-bit address arithmetic; a narrower
        # range embeds losslessly (values are sign-extended).
        return IntRange(64, fact.lo, fact.hi)

    # -- memory tracking -------------------------------------------------
    def _memory_effects(self, inst: Instruction, state: State) -> None:
        if isinstance(inst, Store):
            slot = self.slots.get(id(inst.pointer))
            if slot is not None:
                fact = self.value_fact(inst.value, state)
                key = _mkey(slot)
                if fact is None:
                    state.pop(key, None)
                else:
                    state[key] = fact
            # Stores through *any other* pointer cannot touch a
            # non-escaping slot -- its address was never available.

    # -- edge refinement -------------------------------------------------
    def refine_edge(self, pred: BasicBlock, succ: BasicBlock,
                    state: State) -> State:
        term = pred.terminator
        if not isinstance(term, CondBr):
            return state
        cond = term.condition
        if not isinstance(cond, ICmp):
            return state
        if term.true_block is term.false_block:
            return state  # degenerate: edge truth value unknown
        taken = succ is term.true_block
        self._refine_compare(cond, taken, state)
        return state

    def _refine_compare(self, cmp: ICmp, taken: bool, state: State) -> None:
        # The frontend lowers C truth values as
        #   %c = icmp <pred> ...; %i = zext i1 %c to i32
        #   %b = icmp ne i32 %i, 0; br i1 %b, ...
        # Peel the boolean re-test to reach the comparison that
        # actually constrains program values.
        while cmp.predicate in ("ne", "eq"):
            rhs = cmp.rhs
            lhs = cmp.lhs
            if not (isinstance(rhs, ConstantInt) and rhs.value == 0):
                break
            if not (isinstance(lhs, Cast) and lhs.opcode == "zext"
                    and isinstance(lhs.value, ICmp)):
                break
            if cmp.predicate == "eq":
                taken = not taken
            cmp = lhs.value
        pred = cmp.predicate if taken else _NEGATED[cmp.predicate]
        self._refine_operand(cmp.lhs, pred, cmp.rhs, state)
        self._refine_operand(cmp.rhs, _SWAPPED[pred], cmp.lhs, state)

    def _refine_operand(self, value: Value, pred: str, other: Value,
                        state: State) -> None:
        if isinstance(value, ConstantInt) or not isinstance(
                value.type, IntType):
            return
        bound = self.int_fact(other, state)
        if bound is None:
            return
        bits = value.type.bits
        current = self.int_fact(value, state) or IntRange.full(bits)
        refined: Optional[IntRange] = None
        if pred == "eq":
            refined = current.intersect(bound.lo, bound.hi)
        elif pred == "slt":
            refined = current.intersect(None, bound.hi - 1)
        elif pred == "sle":
            refined = current.intersect(None, bound.hi)
        elif pred == "sgt":
            refined = current.intersect(bound.lo + 1, None)
        elif pred == "sge":
            refined = current.intersect(bound.lo, None)
        elif pred in ("ult", "ule"):
            # Unsigned x < C additionally proves x >= 0 whenever the
            # bound is non-negative (a negative x would be huge
            # unsigned); the unsigned view then matches the signed one.
            if bound.lo >= 0:
                hi = bound.hi - 1 if pred == "ult" else bound.hi
                refined = current.intersect(0, hi)
        elif pred in ("ugt", "uge"):
            if bound.lo >= 0 and current.lo >= 0:
                lo = bound.lo + 1 if pred == "ugt" else bound.lo
                refined = current.intersect(lo, None)
        if refined is None:
            return
        if refined.empty:
            # The branch contradicts the current facts: the edge is
            # infeasible and must contribute bottom.  (Keeping or
            # patching the fact instead would be non-monotone and can
            # manufacture ranges that exclude real executions.)
            state[INFEASIBLE] = True
            return
        state[_vkey(value)] = refined


_NEGATED = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sge": "slt", "sgt": "sle", "sle": "sgt",
    "ult": "uge", "uge": "ult", "ugt": "ule", "ule": "ugt",
}

#: pred such that (a pred b) == (b SWAPPED[pred] a)
_SWAPPED = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
}


# ---------------------------------------------------------------------
# public interface
# ---------------------------------------------------------------------


class FunctionRangeAnalysis:
    """Fixpoint range/provenance facts for one function.

    ``fact_before(inst, value)`` answers "what is known about
    ``value`` at the program point just before ``inst``" -- the query
    the check-elimination filter and the lint detectors ask."""

    def __init__(self, fn: Function,
                 summaries: Optional[ReturnSummaries] = None):
        self.fn = fn
        self.client = RangeClient(fn, summaries)
        self.engine = ForwardDataflow(self.client)
        self.block_in = self.engine.run(fn)
        self._point_facts: Dict[int, State] = {}

    def _states_for(self, block: BasicBlock) -> None:
        entry = self.block_in.get(block)
        if entry is None:
            return

        def visit(inst: Instruction, state: State) -> None:
            self._point_facts[id(inst)] = dict(state)

        self.engine.replay(block, entry, visit)

    def state_before(self, inst: Instruction) -> Optional[State]:
        """The abstract state just before ``inst``; None when the
        instruction's block is unreachable."""
        if id(inst) not in self._point_facts:
            block = inst.parent
            if block is None or block not in self.block_in:
                return None
            self._states_for(block)
        return self._point_facts.get(id(inst))

    def fact_before(self, inst: Instruction, value: Value):
        state = self.state_before(inst)
        if state is None:
            return None
        return self.client.value_fact(value, state)

    def int_range_before(self, inst: Instruction,
                         value: Value) -> Optional[IntRange]:
        fact = self.fact_before(inst, value)
        return fact if isinstance(fact, IntRange) else None

    def pointer_fact_before(self, inst: Instruction,
                            value: Value) -> Optional[PtrFact]:
        fact = self.fact_before(inst, value)
        return fact if isinstance(fact, PtrFact) else None

    def block_out_states(self) -> List[Tuple[BasicBlock, State]]:
        """The abstract state at the *end* of every reachable block."""
        result = []
        for block, entry in self.block_in.items():
            result.append((block, self.engine._flow_block(block, entry)))
        return result

"""``mi-lint``: static detection of the paper's Section 4 pitfalls.

The paper diagnoses its usability pitfalls by observing runtime false
positives and negatives; this module flags them at compile time, before
any run.  Each detector corresponds to one Section 4 case study:

* ``inttoptr-roundtrip`` (Section 4.4) -- pointers that travel through
  integers.  SoftBound's trie keys metadata by pointer value; a pointer
  reconstructed via ``inttoptr`` carries no provenance, so the trie
  either goes stale (false positives, Figure 7's ``swap``) or must fall
  back to wide bounds (lost protection).
* ``bytewise-pointer-copy`` (Section 4.5) -- copy loops that move
  pointer-typed memory at byte granularity.  Legal C, but invisible to
  the trie: the pointer's metadata is not copied along.  The
  ``memcpy`` form is *not* flagged -- the wrapper moves metadata.
* ``sizeless-extern-array`` (Section 4.3) -- ``extern`` array
  declarations without a size.  Under separate compilation SoftBound
  cannot know the object's extent and must assign wide (unchecked)
  bounds, cf. Table 2's 164gzip.
* ``oob-pointer-arithmetic`` / ``oob-access`` (Section 4.2) -- GEPs
  (accesses) the range analysis proves out of bounds on every
  execution.  Low-Fat's escape invariant rejects even the un-derefed
  intermediate pointer; one-past-the-end is allowed and not flagged.
* ``huge-allocation`` (Section 4.6) -- constant allocations too large
  for Low-Fat's largest region class (> 2^30 bytes): the object falls
  back to the standard allocator and is effectively unprotected, cf.
  Table 2's 429mcf.

Linting runs per translation unit on the un-instrumented module (after
mem2reg cleanup), honouring each workload's obfuscated units -- the
same separate-compilation setting the instrumentations face.
"""

from __future__ import annotations

import json as _json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..ir.instructions import (
    Call,
    Cast,
    GEP,
    Instruction,
    Load,
    Store,
)
from ..ir.module import Function, Module
from ..ir.types import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    Type,
    size_of,
)
from .dominators import DominatorTree
from .induction import affine_pointer, analyze_counted_loop, extent_bytes
from .loops import LoopInfo
from .ranges import (
    FunctionRangeAnalysis,
    ReturnSummaries,
    allocation_size,
    is_allocation_call,
)

#: Largest allocation Low-Fat's region classes can host (2^30 bytes
#: minus the one-byte one-past-the-end pad); anything bigger falls
#: back to the unprotected standard allocator.
LOWFAT_MAX_PROTECTED = (1 << 30) - 1

SEVERITIES = ("error", "warning", "info")


@dataclass
class Diagnostic:
    """One lint finding, tagged with the paper section it reproduces."""

    code: str        # stable machine-readable identifier
    severity: str    # "error" | "warning" | "info"
    section: str     # paper section, e.g. "4.4"
    location: str    # "unit:function:line 12" (best effort)
    message: str
    function: str = ""              # enclosing function, "" at unit scope
    line: Optional[int] = None      # source line, when known
    loop_depth: int = 0             # loop nesting depth at the finding
    #: The offending instruction, for the driver to derive ``line`` and
    #: ``loop_depth`` from; never serialized.
    inst: Optional[Instruction] = field(
        default=None, repr=False, compare=False)

    @property
    def unit(self) -> str:
        return self.location.split(":", 1)[0]

    def format(self) -> str:
        return (f"{self.location}: {self.severity}: {self.message} "
                f"[{self.code}, paper section {self.section}]")

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "section": self.section,
            "location": self.location,
            "message": self.message,
            "function": self.function,
            "line": self.line,
            "loop_depth": self.loop_depth,
        }


def _location(unit: str, fn: Optional[Function],
              inst: Optional[Instruction] = None) -> str:
    parts = [unit]
    if fn is not None:
        parts.append(fn.name)
    if inst is not None:
        line = inst.meta.get("line")
        if line is not None:
            parts.append(f"line {line}")
        elif inst.parent is not None:
            parts.append(inst.parent.name)
    return ":".join(parts)


def _contains_pointer(ty: Type, depth: int = 0) -> bool:
    if isinstance(ty, PointerType):
        return True
    if depth > 8:
        return False
    if isinstance(ty, ArrayType):
        return _contains_pointer(ty.element, depth + 1)
    if isinstance(ty, StructType):
        return any(_contains_pointer(f, depth + 1) for f in ty.fields)
    return False


# ---------------------------------------------------------------------
# detectors
# ---------------------------------------------------------------------


def _lint_sizeless_globals(module: Module, unit: str) -> List[Diagnostic]:
    out = []
    for gv in module.globals.values():
        if not gv.declared_without_size:
            continue
        out.append(Diagnostic(
            code="sizeless-extern-array",
            severity="warning",
            section="4.3",
            location=f"{unit}:{gv.name}",
            message=(f"extern array '{gv.name}' is declared without a "
                     "size; SoftBound must assign wide (unchecked) "
                     "upper bounds to every access through it"),
        ))
    return out


def _lint_inttoptr(fn: Function, unit: str) -> List[Diagnostic]:
    casts = [inst for inst in fn.instructions()
             if isinstance(inst, Cast) and inst.opcode == "inttoptr"]
    if not casts:
        return []
    count = len(casts)
    plural = "s" if count > 1 else ""
    return [Diagnostic(
        code="inttoptr-roundtrip",
        severity="warning",
        section="4.4",
        location=_location(unit, fn, casts[0]),
        inst=casts[0],
        message=(f"{count} pointer{plural} materialized from integers "
                 "(inttoptr); SoftBound's metadata trie cannot track "
                 "pointers that travel through integers -- expect stale "
                 "bounds (spurious reports) or wide bounds (lost "
                 "protection)"),
    )]


def _lint_bytewise_copies(fn: Function, unit: str) -> List[Diagnostic]:
    """Byte-granularity loads/stores, inside a loop, through a pointer
    derived from a cast of pointer-typed storage (Section 4.5)."""
    suspicious: List[Cast] = []
    for inst in fn.instructions():
        if not (isinstance(inst, Cast) and inst.opcode == "bitcast"):
            continue
        src_ty = inst.value.type
        dst_ty = inst.type
        if not (isinstance(src_ty, PointerType)
                and isinstance(dst_ty, PointerType)):
            continue
        if not isinstance(dst_ty.pointee, IntType):
            continue
        if size_of(dst_ty.pointee) >= 8:
            continue  # word-sized copies move whole pointers
        if not _contains_pointer(src_ty.pointee):
            continue
        suspicious.append(inst)
    if not suspicious:
        return []

    loops = LoopInfo(fn)
    out: List[Diagnostic] = []
    for cast in suspicious:
        # Follow derived pointers (geps/casts) to dereferences.
        worklist: List = [cast]
        derived = {id(cast)}
        hit: Optional[Instruction] = None
        while worklist and hit is None:
            value = worklist.pop()
            for user in value.users():
                if isinstance(user, (GEP, Cast)):
                    if id(user) not in derived:
                        derived.add(id(user))
                        worklist.append(user)
                elif isinstance(user, Load) and user.pointer is value:
                    if user.parent and loops.loop_of(user.parent):
                        hit = user
                        break
                elif isinstance(user, Store) and user.pointer is value:
                    if user.parent and loops.loop_of(user.parent):
                        hit = user
                        break
        if hit is None:
            continue
        # One finding per function: the source and destination sides of
        # the same copy loop are a single pitfall.
        return [Diagnostic(
            code="bytewise-pointer-copy",
            severity="warning",
            section="4.5",
            location=_location(unit, fn, hit),
            inst=hit,
            message=("pointer-typed memory is copied at byte "
                     "granularity in a loop; the metadata trie cannot "
                     "follow partial-pointer writes -- use memcpy (the "
                     "wrapper moves metadata with the bytes)"),
        )]
    return []


def _lint_ranges(fn: Function, unit: str,
                 summaries: ReturnSummaries) -> List[Diagnostic]:
    """Definite out-of-bounds pointers and accesses (Section 4.2).

    Only *must*-violations are reported: the abstract offset interval
    has to lie entirely outside the allocation.  Forming a
    one-past-the-end pointer is legal C and stays silent."""
    analysis = FunctionRangeAnalysis(fn, summaries)
    out: List[Diagnostic] = []
    for block in fn.blocks:
        for inst in block.instructions:
            if isinstance(inst, GEP):
                fact = analysis.pointer_fact_before(inst, inst.pointer)
                if fact is None:
                    continue
                delta = analysis.client._gep_offset(
                    inst, analysis.state_before(inst) or {})
                if delta is None:
                    continue
                shifted = fact.shifted(delta)
                if shifted is None:
                    continue
                if (shifted.offset.hi < 0
                        or (shifted.size is not None
                            and shifted.offset.lo > shifted.size)):
                    size = (f"{shifted.size}" if shifted.size is not None
                            else "unknown")
                    out.append(Diagnostic(
                        code="oob-pointer-arithmetic",
                        severity="warning",
                        section="4.2",
                        location=_location(unit, fn, inst),
                        inst=inst,
                        message=(
                            "pointer arithmetic provably leaves the "
                            f"allocation (offset {shifted.offset.lo}.."
                            f"{shifted.offset.hi} of {size} "
                            "bytes); Low-Fat's escape invariant rejects "
                            "the out-of-bounds intermediate even if it "
                            "is brought back in bounds before use"),
                    ))
            elif isinstance(inst, (Load, Store)):
                pointer = inst.pointer
                width = size_of(inst.type if isinstance(inst, Load)
                                else inst.value.type)
                fact = analysis.pointer_fact_before(inst, pointer)
                if fact is None:
                    continue
                if fact.proves_out_of_bounds(width):
                    out.append(Diagnostic(
                        code="oob-access",
                        severity="error",
                        section="4.2",
                        location=_location(unit, fn, inst),
                        inst=inst,
                        message=(
                            f"{width}-byte access provably out of "
                            f"bounds (offset {fact.offset.lo}.."
                            f"{fact.offset.hi} of {fact.size} bytes); "
                            "every instrumentation check here will "
                            "fire"),
                    ))
    return out


def _lint_proven_oob_loops(fn: Function, unit: str,
                           summaries: ReturnSummaries) -> List[Diagnostic]:
    """Loop accesses whose *extent* is provably out of bounds
    (Section 4.2, loop form).

    Per-point range facts cannot flag the classic ``i <= N`` off-by-one:
    only the final iteration violates, so no single program point is a
    must-violation.  The induction analysis can: for a counted loop with
    a static trip count, an affine access's byte hull is static, and a
    hull endpoint outside the witness allocation is an access some
    iteration *definitely* performs."""
    domtree = DominatorTree(fn)
    loopinfo = LoopInfo(fn, domtree)
    if not loopinfo.loops:
        return []
    analysis = FunctionRangeAnalysis(fn, summaries)
    out: List[Diagnostic] = []
    for loop in loopinfo.all_loops():
        counted = analyze_counted_loop(loop, domtree, analysis)
        if counted is None or counted.static_last is None:
            continue
        for block in loop.block_order:
            # Subloop blocks may run zero times per iteration, so a
            # hull endpoint there is not necessarily accessed.  Header
            # blocks run once *more* (the final exit-test entry with
            # iv == last + step), so their hull is one step wider --
            # which is what catches the classic rotated do-while
            # off-by-one.
            if loopinfo.loop_of(block) is not loop:
                continue
            if not domtree.dominates_block(block, counted.latch):
                continue
            header_resident = block is loop.header
            for inst in block.instructions:
                if not isinstance(inst, (Load, Store)):
                    continue
                width = size_of(inst.type if isinstance(inst, Load)
                                else inst.value.type)
                fact = analysis.pointer_fact_before(inst, inst.pointer)
                if fact is not None and fact.proves_out_of_bounds(width):
                    continue  # already an ``oob-access`` finding
                aff = affine_pointer(inst.pointer, counted.iv,
                                     counted.preheader.terminator, domtree,
                                     counted.iv_range(header_resident))
                if aff is None:
                    continue
                extent = extent_bytes(aff, counted, width,
                                      header_resident)
                if extent is None:
                    continue
                root_fact = analysis.pointer_fact_before(
                    counted.preheader.terminator, aff.root)
                if root_fact is None or root_fact.size is None:
                    continue
                lo, hi = extent
                off = root_fact.offset
                if off.lo + hi <= root_fact.size and off.hi + lo >= 0:
                    continue
                trips = counted.static_trip_count()
                out.append(Diagnostic(
                    code="proven-oob",
                    severity="error",
                    section="4.2",
                    location=_location(unit, fn, inst),
                    inst=inst,
                    message=(
                        f"loop provably accesses bytes {lo}..{hi} of a "
                        f"{root_fact.size}-byte allocation over "
                        f"{trips} iterations; some iteration's "
                        f"{width}-byte access is out of bounds and "
                        "every instrumentation aborts here"),
                ))
    return out


def _lint_huge_allocations(fn: Function, unit: str) -> List[Diagnostic]:
    out = []
    for inst in fn.instructions():
        if not (isinstance(inst, Call) and is_allocation_call(inst)):
            continue
        size = allocation_size(inst)
        if size is None or size <= LOWFAT_MAX_PROTECTED:
            continue
        out.append(Diagnostic(
            code="huge-allocation",
            severity="warning",
            section="4.6",
            location=_location(unit, fn, inst),
            inst=inst,
            message=(f"allocation of {size} bytes exceeds Low-Fat's "
                     "largest region class (max protected size "
                     f"{LOWFAT_MAX_PROTECTED} bytes); the object falls "
                     "back to the standard allocator and is "
                     "effectively unprotected"),
        ))
    return out


# ---------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------

_SEVERITY_ORDER = {name: i for i, name in enumerate(SEVERITIES)}


def _sort_key(d: Diagnostic):
    """Stable report order: source order -- ``(unit, line)`` -- with
    severity and code breaking ties; unit-scope findings first."""
    return (
        d.unit,
        d.line if d.line is not None else -1,
        _SEVERITY_ORDER.get(d.severity, 99),
        d.code,
    )


def lint_module(module: Module, unit: Optional[str] = None) -> List[Diagnostic]:
    """Run every detector over one (un-instrumented) module.

    Findings come back stably sorted by ``(unit, line)`` -- source
    order, the order editors and diff tools want -- with severity and
    code only breaking ties.  Unit-scope findings (no line) sort before
    the unit's line-anchored ones."""
    unit = unit or module.name
    diagnostics = _lint_sizeless_globals(module, unit)
    summaries = ReturnSummaries(module)
    for fn in module.functions.values():
        if fn.native or fn.is_declaration:
            continue
        found = (
            _lint_inttoptr(fn, unit)
            + _lint_bytewise_copies(fn, unit)
            + _lint_ranges(fn, unit, summaries)
            + _lint_proven_oob_loops(fn, unit, summaries)
            + _lint_huge_allocations(fn, unit)
        )
        if found:
            loops = LoopInfo(fn)
            for diag in found:
                diag.function = fn.name
                if diag.inst is not None:
                    diag.line = diag.inst.meta.get("line")
                    if diag.inst.parent is not None:
                        diag.loop_depth = loops.loop_depth(diag.inst.parent)
        diagnostics.extend(found)
    diagnostics.sort(key=_sort_key)
    return diagnostics


def lint_sources(
    sources: Union[str, Dict[str, str], Sequence[str]],
    obfuscated_units: Sequence[str] = (),
) -> List[Diagnostic]:
    """Compile each translation unit separately and lint it.

    Linting is deliberately per-unit (pre-link): the Section 4.3 and
    4.4 pitfalls only exist under separate compilation."""
    from ..frontend import compile_source
    from ..opt import Mem2Reg, SimplifyCFG

    if isinstance(sources, str):
        named = {"tu0": sources}
    elif isinstance(sources, dict):
        named = dict(sources)
    else:
        named = {f"tu{i}": src for i, src in enumerate(sources)}

    diagnostics: List[Diagnostic] = []
    for name, source in named.items():
        module = compile_source(
            source, name,
            obfuscate_pointer_copies=name in tuple(obfuscated_units),
        )
        SimplifyCFG().run(module)
        Mem2Reg().run(module)
        diagnostics.extend(lint_module(module, name))
    diagnostics.sort(key=_sort_key)
    return diagnostics


def lint_workload(workload) -> List[Diagnostic]:
    """Lint a registered workload with its own obfuscation setting."""
    return lint_sources(workload.sources, tuple(workload.obfuscated_units))


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    lines = [d.format() for d in diagnostics]
    if not lines:
        return "no findings"
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    return _json.dumps([d.to_dict() for d in diagnostics], indent=2)

"""Generic forward dataflow engine over the CFG.

The engine implements the classic worklist algorithm with widening:

* blocks are processed in reverse postorder (so acyclic regions
  converge in one sweep);
* an *abstract state* is a dictionary mapping analysis-chosen keys to
  lattice facts; a key that is absent means "no information" (top);
* states are joined edge-wise at control-flow merges, with per-edge
  *refinement* (e.g. narrowing an integer range on the true edge of a
  comparison) applied before the join;
* at join points that close a cycle (targets of back edges in the
  reverse-postorder numbering) the join is replaced by *widening* once
  a key has been updated more than ``widen_threshold`` times, which
  guarantees termination on lattices of unbounded height such as
  integer intervals.

Clients subclass :class:`DataflowClient` and provide transfer
functions; :class:`ForwardDataflow` computes the fixpoint and returns
the state at entry to every reachable block.  The state *inside* a
block is recovered by replaying the client's transfer function from
the block's entry state (see :meth:`ForwardDataflow.replay`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import Value
from .cfg import reverse_postorder

#: Abstract states map client-chosen hashable keys to lattice facts.
State = Dict[object, object]

#: Sentinel key a client's :meth:`~DataflowClient.refine_edge` may set
#: (to any truthy value) to declare the whole edge *infeasible*: the
#: branch condition contradicts the current facts, so the edge
#: contributes bottom -- the engine drops it from the successor's join
#: instead of propagating along it.  This keeps refinement monotone:
#: an empty intersection must become "unreachable", never a patched-up
#: half-range (which could later exclude real executions).
INFEASIBLE = "__edge_infeasible__"


class DataflowClient:
    """Transfer functions and lattice operations of one analysis.

    The default implementations make the engine a plain reachability
    walk; real clients override the hooks they need.
    """

    def boundary_state(self, fn: Function) -> State:
        """The abstract state on entry to the function."""
        return {}

    def transfer(self, inst: Instruction, state: State) -> None:
        """Update ``state`` in place for the effect of ``inst``.

        ``phi`` instructions are never passed here -- their facts flow
        in edge-wise through :meth:`phi_incoming_fact`."""

    def phi_incoming_fact(
        self, phi: Phi, value: Value, state: State
    ) -> Optional[object]:
        """The fact ``phi`` receives along an edge carrying ``value``
        (evaluated in the predecessor's out-state).  ``None`` means no
        information."""
        return None

    def refine_edge(
        self, pred: BasicBlock, succ: BasicBlock, state: State
    ) -> State:
        """Refine ``state`` (a private copy) for the edge pred->succ,
        e.g. from the branch condition.  Returns the refined state."""
        return state

    def join_fact(self, a: object, b: object) -> Optional[object]:
        """Least upper bound of two facts; ``None`` means top."""
        return a if a == b else None

    def widen_fact(self, old: object, new: object) -> Optional[object]:
        """Widening operator: must reach a fixpoint in finitely many
        steps.  Defaults to giving up (top)."""
        return None

    def keep_unmatched_key(self, key: object) -> bool:
        """Whether a key present in only one of two joined states
        survives the join.

        SSA value facts may survive: a definition dominates its uses,
        so a value bound on one path cannot be consulted past the
        merge except through a phi (which flows edge-wise).  Facts
        about *memory* must not survive -- report False for them."""
        return True


class ForwardDataflow:
    """Worklist fixpoint solver for a :class:`DataflowClient`."""

    def __init__(self, client: DataflowClient, widen_threshold: int = 3,
                 max_iterations: int = 100_000):
        self.client = client
        self.widen_threshold = widen_threshold
        self.max_iterations = max_iterations

    def run(self, fn: Function) -> Dict[BasicBlock, State]:
        """Compute the fixpoint; returns the entry state per block."""
        client = self.client
        order = reverse_postorder(fn)
        if not order:
            return {}
        rpo_index = {block: i for i, block in enumerate(order)}
        # A block is a widening point iff some predecessor comes later
        # in reverse postorder -- i.e. the block closes a cycle.
        widen_points = {
            block
            for block in order
            for pred in block.predecessors
            if pred in rpo_index and rpo_index[pred] >= rpo_index[block]
        }

        entry = order[0]
        block_in: Dict[BasicBlock, State] = {entry: client.boundary_state(fn)}
        # The last state propagated along each CFG edge.  A block's
        # in-state is always recomputed *from scratch* as the join of
        # its recorded incoming edges: when an edge re-flows, its old
        # contribution is replaced wholesale, so facts that became
        # stale on that edge (e.g. a refined range from an earlier,
        # less precise iteration) cannot linger in the join.
        edge_out: Dict[Tuple[BasicBlock, BasicBlock], State] = {}
        joins: Dict[BasicBlock, int] = {}
        # Keys widened all the way to top (widen_fact returned None)
        # stay top: without this a dropped key could resurrect through
        # an always-feasible edge (e.g. the loop entry) and ping-pong
        # with the widening forever.
        topped: Dict[BasicBlock, set] = {}
        pending = {entry}
        iterations = 0
        while pending:
            iterations += 1
            if iterations > self.max_iterations:  # pragma: no cover
                raise RuntimeError("dataflow fixpoint did not converge")
            block = min(pending, key=lambda b: rpo_index[b])
            pending.discard(block)
            out = self._flow_block(block, block_in[block])
            for succ in block.successors:
                if succ not in rpo_index:
                    continue
                edge_state = client.refine_edge(block, succ, dict(out))
                if edge_state.get(INFEASIBLE):
                    # The branch cannot be taken under current facts:
                    # this edge contributes bottom to the join.
                    edge_out.pop((block, succ), None)
                else:
                    for phi in succ.phis():
                        fact = client.phi_incoming_fact(
                            phi, phi.incoming_value_for(block), edge_state
                        )
                        key = ("v", id(phi))
                        if fact is None:
                            edge_state.pop(key, None)
                        else:
                            edge_state[key] = fact
                    edge_out[(block, succ)] = edge_state

                edges = [
                    edge_out[(pred, succ)]
                    for pred in succ.predecessors
                    if (pred, succ) in edge_out
                ]
                if not edges:
                    continue  # no feasible edge reaches succ (yet)
                phi_keys = {("v", id(phi)) for phi in succ.phis()}
                new_in = self._merge_edges(edges, phi_keys)
                for key in topped.get(succ, ()):
                    new_in.pop(key, None)
                old_in = block_in.get(succ)
                if old_in is not None:
                    joins[succ] = joins.get(succ, 0) + 1
                    if (succ in widen_points
                            and joins[succ] > self.widen_threshold):
                        widened = self._widen_state(old_in, new_in)
                        gone = set(new_in) - set(widened)
                        if gone:
                            topped.setdefault(succ, set()).update(gone)
                        new_in = widened
                if old_in != new_in:
                    block_in[succ] = new_in
                    pending.add(succ)
        return block_in

    def _merge_edges(self, edges: List[State], phi_keys: set) -> State:
        """Join the recorded incoming edge states of one block.

        Phi keys require a fact on *every* edge (a phi takes a
        different value per edge; one unknown incoming makes it
        unknown).  Other keys follow the client's
        :meth:`~DataflowClient.keep_unmatched_key` policy."""
        client = self.client
        if not edges:
            return {}
        merged: State = {}
        keys = set()
        for state in edges:
            keys.update(state)
        total = len(edges)
        for key in keys:
            facts = [state[key] for state in edges if key in state]
            if len(facts) < total:
                if key in phi_keys or not client.keep_unmatched_key(key):
                    continue
            joined = facts[0]
            for fact in facts[1:]:
                joined = client.join_fact(joined, fact)
                if joined is None:
                    break
            if joined is not None:
                merged[key] = joined
        return merged

    def _widen_state(self, old: State, new: State) -> State:
        """Apply the client's widening to every key that keeps
        growing; keys no longer present stay dropped (that *is* the
        top direction)."""
        client = self.client
        widened: State = {}
        for key, new_fact in new.items():
            old_fact = old.get(key)
            if old_fact is None or old_fact == new_fact:
                widened[key] = new_fact
                continue
            fact = client.widen_fact(old_fact, new_fact)
            if fact is not None:
                widened[key] = fact
        return widened

    def _flow_block(self, block: BasicBlock, entry: State) -> State:
        state = dict(entry)
        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue  # facts arrived edge-wise
            self.client.transfer(inst, state)
        return state

    def replay(
        self,
        block: BasicBlock,
        entry: State,
        visit: Callable[[Instruction, State], None],
    ) -> None:
        """Re-run the transfer over ``block`` from ``entry``, calling
        ``visit(inst, state)`` with the state *before* each
        instruction.  This recovers the per-instruction states that
        :meth:`run` does not store."""
        state = dict(entry)
        for inst in block.instructions:
            visit(inst, state)
            if not isinstance(inst, Phi):
                self.client.transfer(inst, state)


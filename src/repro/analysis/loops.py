"""Natural loop detection.

LICM, the check-hoisting filter, and the pipeline experiments of
Section 5.5 need loop structure: a back edge ``latch -> header`` where
the header dominates the latch defines a natural loop, whose body is
everything that can reach the latch without passing through the
header.  Several back edges to the same header (``continue``
statements, shared-header rotated loops) form *one* loop with several
latches, not several loops.

Nesting: headers are processed in reverse post order.  A dominator
precedes everything it dominates in any RPO, and an outer loop's
header dominates every inner header, so outer loops are always
discovered before the loops nested inside them.  A new loop's parent
is therefore simply the innermost already-discovered loop containing
its header, and a block's innermost loop assignment is only ever
refined from an enclosing loop to a nested one -- inner-loop bodies
are never attributed to the outer loop.

All orderings exposed here (``Loop.block_order``, ``exit_blocks``,
``latches``, ``LoopInfo.all_loops``) are deterministic functions of
the CFG (RPO-based), never of object identity hashes, so passes that
synthesize IR per loop produce identical modules across processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.module import BasicBlock, Function
from .cfg import predecessor_map
from .dominators import DominatorTree


class Loop:
    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        #: ``blocks`` in reverse post order (header first).  Iterate
        #: this, not the set, whenever the result influences output.
        self.block_order: List[BasicBlock] = [header]
        #: In-loop predecessors of the header (sources of the back
        #: edges), in RPO.  Multi-backedge loops have several.
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth(self) -> int:
        d, loop = 1, self.parent
        while loop is not None:
            d += 1
            loop = loop.parent
        return d

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        exits: List[BasicBlock] = []
        for block in self.block_order:
            for succ in block.successors:
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        assert self.header.parent is not None
        preds = [
            p for p in self.header.predecessors if p not in self.blocks
        ]
        if len(preds) == 1 and len(preds[0].successors) == 1:
            return preds[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, fn: Function, domtree: Optional[DominatorTree] = None):
        self.function = fn
        self.domtree = domtree or DominatorTree(fn)
        self.loops: List[Loop] = []
        self._loop_of: Dict[BasicBlock, Loop] = {}
        self._rpo_index: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self.domtree.rpo)
        }
        self._find_loops()

    def _find_loops(self) -> None:
        preds = predecessor_map(self.function)
        # One loop per header, merging every back edge into it.
        headers: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in self.domtree.rpo:
            for succ in block.successors:
                if self.domtree.dominates_block(succ, block):
                    headers.setdefault(succ, []).append(block)

        # Dominance (RPO) order: outer loops before the loops they
        # contain, so nesting resolves with a single innermost lookup.
        for header in self.domtree.rpo:
            if header not in headers:
                continue
            loop = Loop(header)
            loop.latches = list(headers[header])
            worklist = list(loop.latches)
            while worklist:
                block = worklist.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                worklist.extend(
                    p for p in preds.get(block, [])
                    if self.domtree.is_reachable(p)
                )
            loop.block_order = sorted(loop.blocks, key=self._rpo_index.get)

            # Parent: the innermost loop already containing our header
            # (computed before the body sweep below overwrites it).
            enclosing = self._loop_of.get(header)
            if enclosing is not None:
                loop.parent = enclosing
                enclosing.subloops.append(loop)
            else:
                self.loops.append(loop)

            for block in loop.block_order:
                current = self._loop_of.get(block)
                if current is None or current.contains(loop.header):
                    # Unclaimed, or claimed by a loop that encloses
                    # this one entirely: this loop is more deeply
                    # nested, so it wins the innermost slot.
                    self._loop_of[block] = loop
            self._loop_of[header] = loop

    def loop_of(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, if any."""
        return self._loop_of.get(block)

    def all_loops(self) -> List[Loop]:
        result: List[Loop] = []
        stack = list(self.loops)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.subloops)
        return result

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self._loop_of.get(block)
        return loop.depth if loop is not None else 0

"""Natural loop detection.

LICM (and the pipeline experiments of Section 5.5) need loop structure:
a back edge ``latch -> header`` where the header dominates the latch
defines a natural loop, whose body is everything that can reach the
latch without passing through the header.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.module import BasicBlock, Function
from .cfg import predecessor_map
from .dominators import DominatorTree


class Loop:
    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth(self) -> int:
        d, loop = 1, self.parent
        while loop is not None:
            d += 1
            loop = loop.parent
        return d

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        assert self.header.parent is not None
        preds = [
            p for p in self.header.predecessors if p not in self.blocks
        ]
        if len(preds) == 1 and len(preds[0].successors) == 1:
            return preds[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, fn: Function, domtree: Optional[DominatorTree] = None):
        self.function = fn
        self.domtree = domtree or DominatorTree(fn)
        self.loops: List[Loop] = []
        self._loop_of: Dict[BasicBlock, Loop] = {}
        self._find_loops()

    def _find_loops(self) -> None:
        preds = predecessor_map(self.function)
        # Find headers via back edges, process in dominance order so
        # outer loops are discovered before inner ones.
        headers: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in self.domtree.rpo:
            for succ in block.successors:
                if self.domtree.dominates_block(succ, block):
                    headers.setdefault(succ, []).append(block)

        for header in self.domtree.rpo:
            if header not in headers:
                continue
            loop = Loop(header)
            worklist = list(headers[header])
            while worklist:
                block = worklist.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                worklist.extend(
                    p for p in preds.get(block, []) if self.domtree.is_reachable(p)
                )
            # Nest into the innermost existing loop containing the header.
            enclosing = self._loop_of.get(header)
            if enclosing is not None:
                loop.parent = enclosing
                enclosing.subloops.append(loop)
            else:
                self.loops.append(loop)
            for block in loop.blocks:
                current = self._loop_of.get(block)
                if current is None or loop.header is not block and current.contains(loop.header):
                    self._loop_of[block] = loop
            self._loop_of[header] = loop

    def loop_of(self, block: BasicBlock) -> Optional[Loop]:
        return self._loop_of.get(block)

    def all_loops(self) -> List[Loop]:
        result: List[Loop] = []
        stack = list(self.loops)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.subloops)
        return result

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self._loop_of.get(block)
        return loop.depth if loop is not None else 0

"""Dominator tree construction (Cooper/Harvey/Kennedy algorithm).

Dominance is the backbone of the mini-compiler: mem2reg uses the
dominance frontier to place phi nodes, the verifier uses dominance to
check SSA well-formedness, and the paper's check-elimination
optimization (Section 5.3) removes a check when an *equivalent check
dominates it*.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import Value
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    def __init__(self, fn: Function):
        self.function = fn
        self.rpo: List[BasicBlock] = reverse_postorder(fn)
        self._rpo_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self.rpo)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._depth: Dict[BasicBlock, int] = {}
        if self.rpo:
            self._compute()

    # -- construction ---------------------------------------------------
    def _compute(self) -> None:
        entry = self.rpo[0]
        preds = predecessor_map(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                candidates = [
                    p for p in preds.get(block, []) if p in idom and p in self._rpo_index
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = intersect(new_idom, p)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        idom[entry] = None
        self.idom = idom
        self._children = {b: [] for b in self.rpo}
        for block, parent in idom.items():
            if parent is not None:
                self._children[parent].append(block)
        self._depth[entry] = 0
        stack = [entry]
        while stack:
            block = stack.pop()
            for child in self._children[block]:
                self._depth[child] = self._depth[block] + 1
                stack.append(child)

    # -- queries -----------------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._rpo_index

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        runner: Optional[BasicBlock] = b
        while runner is not None:
            if runner is a:
                return True
            runner = self.idom.get(runner)
        return False

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, a: Instruction, b: Instruction) -> bool:
        """True if instruction ``a`` dominates instruction ``b``.

        Within one block this is program order; across blocks it is
        block dominance.  An instruction does not dominate itself.
        """
        ba, bb = a.parent, b.parent
        assert ba is not None and bb is not None
        if ba is bb:
            return ba.index_of(a) < bb.index_of(b)
        return self.strictly_dominates_block(ba, bb)

    def value_dominates_use(self, value: Value, user: Instruction, operand_index: int) -> bool:
        """True if ``value`` is available where ``user`` consumes it.

        Non-instruction values (constants, arguments, globals,
        functions) are available everywhere.  For phi users, the value
        must dominate the *end of the incoming block*, not the phi.
        """
        if not isinstance(value, Instruction):
            return True
        if isinstance(user, Phi):
            incoming = user.incoming_blocks[operand_index]
            defining = value.parent
            assert defining is not None
            return self.dominates_block(defining, incoming)
        return self.dominates(value, user)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children.get(block, []))

    def depth(self, block: BasicBlock) -> int:
        return self._depth.get(block, -1)

    # -- dominance frontier -------------------------------------------------
    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontier of every reachable block."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        preds = predecessor_map(self.function)
        for block in self.rpo:
            block_preds = [p for p in preds.get(block, []) if self.is_reachable(p)]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier

"""Induction-variable and monotone-pointer analysis for counted loops.

The check-hoisting filter (``-mi-opt-hoist``) replaces the
per-iteration dereference checks of a loop with one widened check in
the preheader.  Everything it needs to know about the loop is derived
here:

* :func:`analyze_counted_loop` recognizes *counted loops*: a natural
  loop with a unique preheader, a single latch, whose only exit is the
  header's conditional branch on ``iv <cmp> bound``, where ``iv`` is a
  header phi advancing by a positive constant step from a constant
  initial value.  The recognizer also demands that every non-header
  block branches back into the loop (no breaks), that the body
  contains no may-abort calls, and that every nested subloop provably
  *terminates* (:func:`_loop_terminates`) -- these conditions make
  the trip count exact and guarantee that once the loop is entered,
  *every* iteration's checks execute.  (A check hoisted out of a
  qualifying outer loop must additionally live in the outer loop
  *proper* -- not inside a subloop, whose own trip count may be zero
  -- which is the caller's obligation, keyed on ``loop_of``.)

* :func:`affine_pointer` decomposes a checked pointer into
  ``root + slope*iv + intercept`` (bytes) by walking its GEP/bitcast
  chain through the typed layout, where ``root`` is loop-invariant and
  available in the preheader.  Index expressions may use the IV,
  constants, and ``add``/``sub``/``mul``/``shl``/``sext``/``zext``
  combinations thereof -- but the VM implements *fixed-width wrapping*
  arithmetic, so the decomposition is only exact when no intermediate
  wraps.  Every node of the index expression is therefore checked to
  fit its own integer type across the whole IV range the check
  executes over (the model is linear in ``iv``, so checking the two
  endpoint values suffices); ``zext`` additionally requires its
  operand to be provably non-negative over that range (``zext`` of a
  negative value is not value-preserving), and ``trunc`` is always
  rejected.  Any node that could wrap makes the modeled address
  diverge from the executed one in *either* direction, so the whole
  pointer is conservatively rejected.

Why a single widened check is exact (the *extremes argument*): the
addresses a group of affine checks accesses over iterations
``init..last`` form a set whose minimum and maximum are attained at
the first or last iteration (monotonicity in ``iv``).  Allocations are
contiguous, so the convex hull ``[min, max+width)`` lies inside the
witness allocation iff both extreme accesses do, iff every access
does.  The widened check over the hull therefore passes exactly when
all the per-iteration checks it replaces would have passed.

The trip count must be the *dynamic* one: the hull's upper end uses
the last IV value computed at run time from the loop bound (the
filter synthesizes that arithmetic in the preheader); a static
over-approximation could widen the hull beyond what the program
actually accesses and abort a valid run.  For the same reason the
recognizer requires a static proof that the loop runs at least once
(``init < bound`` at the preheader): for a zero-trip loop the "first
access" does not exist, so there is nothing sound to check.

One block is special: the *header* executes ``trip_count + 1`` times
-- its instructions also run on the final entry whose exit test
fails, with ``iv == last + step``.  A header-resident access
therefore spans IV values ``init .. last+step``, one step beyond a
body access, and all hull computations (hoisting, verdicts, lint)
must widen header-resident groups by one extra step.  That extension
is still exact: whenever the loop is entered the header runs for
every one of those IV values, including the final one.  The
recognizer's latch-increment no-wrap proof covers ``last + step``
too, so the extended endpoint is modeled faithfully.

The same decomposition yields *static safety verdicts*: when the loop
bound is a compile-time constant and the range analysis knows the
witness allocation of ``root``, the whole accessed extent is static,
and comparing it against the allocation size proves every iteration
safe -- or proves the loop *will* violate (the hull's endpoints are
genuinely accessed), which ``repro lint`` reports as ``proven-oob``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import (
    BinOp,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Phi,
)
from ..ir.module import BasicBlock
from ..ir.types import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    size_of,
    struct_field_offset,
)
from ..ir.values import ConstantInt, Value
from .dominators import DominatorTree
from .loops import Loop
from .ranges import FunctionRangeAnalysis

#: Predicates the recognizer accepts for the continue-branch compare,
#: after normalization (IV on the left, "stay in the loop" when true).
_CONTINUE_PREDICATES = ("slt", "sle", "ne")

_SWAPPED = {"slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
            "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
            "eq": "eq", "ne": "ne"}
_NEGATED = {"slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
            "ult": "uge", "ule": "ugt", "ugt": "ule", "uge": "ult",
            "eq": "ne", "ne": "eq"}

#: Magnitude cap on recognized IV/bound/offset values.  Keeping every
#: modeled quantity far below 2**63 means the synthesized i64 hull
#: arithmetic in the preheader (sub/sdiv/mul/add chains) can never
#: wrap, so the Python-side exact integers and the VM's fixed-width
#: results agree.  No realistic loop comes anywhere near the cap.
_MAG_LIMIT = 1 << 59


def _may_abort_call(inst: Instruction) -> bool:
    """A call that may terminate the program (or not return): if one
    runs between two iterations, later iterations' checks may never
    execute, so hoisting them to the preheader would be unsound."""
    if not isinstance(inst, Call):
        return False
    callee = inst.callee_function
    if callee is None:
        return True  # indirect call: anything can happen
    return (
        "may_abort" in callee.attributes
        or "noreturn" in callee.attributes
        or not ("readnone" in callee.attributes
                or "readonly" in callee.attributes)
    )


@dataclass
class CountedLoop:
    """A loop with a recognized IV and an exact, exit-free trip count."""

    loop: Loop
    preheader: BasicBlock
    latch: BasicBlock
    iv: Phi
    init: int                 # constant initial IV value
    step: int                 # positive constant increment per iteration
    predicate: str            # normalized continue predicate: slt/sle/ne
    bound: Value              # loop-invariant compare bound
    #: Conservative upper bound on the last in-loop IV value, derived
    #: from the bound's range fact at the preheader.  The recognizer
    #: proves ``last_hi + step`` fits the IV's type, so neither the
    #: latch increment nor the final header-entry IV ever wraps.
    last_hi: int = 0
    #: Last IV value when the bound is itself a constant, else None
    #: (the filter then synthesizes the computation at run time).
    static_last: Optional[int] = None

    def static_trip_count(self) -> Optional[int]:
        if self.static_last is None:
            return None
        return (self.static_last - self.init) // self.step + 1

    def iv_range(self, header_resident: bool = False) -> Tuple[int, int]:
        """Inclusive range of IV values an access executes over: body
        blocks see ``init..last``; the header also runs on the final
        exit-test entry with ``iv == last + step``."""
        hi = self.last_hi + (self.step if header_resident else 0)
        return (self.init, hi)


def _peel_condition(cond: Value, taken: bool) -> Tuple[Value, bool]:
    """Strip ``icmp ne/eq (zext i1 (icmp ...)), 0`` wrappers (the
    frontend's truthiness pattern), tracking branch polarity."""
    while isinstance(cond, ICmp) and cond.predicate in ("ne", "eq"):
        rhs = cond.rhs
        inner = cond.lhs
        if not (isinstance(rhs, ConstantInt) and rhs.value == 0):
            break
        if isinstance(inner, Cast) and inner.opcode == "zext":
            inner = inner.value
        if isinstance(inner, ICmp) and inner.type.bits == 1 \
                and inner is not cond:
            if cond.predicate == "eq":
                taken = not taken
            cond = inner
            continue
        break
    return cond, taken


def available_outside(value: Value, point: Instruction,
                      domtree: DominatorTree) -> bool:
    """True when ``value`` is defined at ``point`` (the preheader
    terminator): non-instructions are available everywhere, and an
    instruction qualifies iff its definition dominates the point --
    loop invariance alone is *not* enough (a value defined on only one
    path before the loop is invariant but unavailable)."""
    if not isinstance(value, Instruction):
        return True
    return domtree.dominates(value, point)


def _loop_terminates(loop: Loop, domtree: DominatorTree,
                     analysis: FunctionRangeAnalysis) -> bool:
    """Prove ``loop`` always terminates: its only exit is the header's
    conditional branch on an IV that advances by a positive constant
    step toward a loop-invariant bound, and every subloop terminates
    too.  Unlike the full counted-loop recognition this needs no
    minimum-trip proof -- a zero-trip subloop still lets the enclosing
    loop finish its iteration.  It *does* need wrap evidence, because
    the VM's arithmetic is fixed-width:

    * ``slt``/``sle``: the increment must not be able to jump the IV
      over the bound and wrap past the type maximum (``while (i <=
      INT_MAX)`` never exits -- the IV wraps and stays ``<= bound``),
      so ``bound_hi + step`` (``sle``; minus one for ``slt``) must fit
      the compare type;
    * ``ne`` (step 1): the IV must provably start at or below the
      bound -- a runtime ``init > bound`` spins for ~2**bits
      iterations before the wrapped IV comes back around, which is a
      hang for every practical purpose.  Both proofs come from the
      range facts at the loop's preheader; without a preheader only
      compile-time constants qualify."""
    if not all(_loop_terminates(sub, domtree, analysis)
               for sub in loop.subloops):
        return False
    if len(loop.latches) != 1:
        return False
    latch = loop.latches[0]
    header = loop.header
    term = header.terminator
    if not isinstance(term, CondBr):
        return False
    in_true = term.true_block in loop.blocks
    in_false = term.false_block in loop.blocks
    if in_true == in_false:
        return False
    for block in loop.block_order:
        if block is header:
            continue
        if any(succ not in loop.blocks for succ in block.successors):
            return False
    cond, taken = _peel_condition(term.condition, in_true)
    if not isinstance(cond, ICmp):
        return False
    for phi in header.phis():
        if len(phi.incoming_blocks) != 2:
            continue
        if phi is not cond.lhs and phi is not cond.rhs:
            continue
        try:
            next_v = phi.incoming_value_for(latch)
        except KeyError:
            continue
        if not (isinstance(next_v, BinOp) and next_v.opcode == "add"):
            continue
        if next_v.lhs is phi and isinstance(next_v.rhs, ConstantInt):
            step = next_v.rhs.signed_value
        elif next_v.rhs is phi and isinstance(next_v.lhs, ConstantInt):
            step = next_v.lhs.signed_value
        else:
            continue
        if step <= 0:
            continue
        predicate = cond.predicate
        bound = cond.rhs if cond.lhs is phi else cond.lhs
        if cond.rhs is phi:
            predicate = _SWAPPED[predicate]
        if not taken:
            predicate = _NEGATED[predicate]
        if predicate not in _CONTINUE_PREDICATES:
            continue
        if predicate == "ne" and step != 1:
            continue
        if isinstance(bound, Instruction) and isinstance(
                bound.parent, BasicBlock) and bound.parent in loop.blocks:
            continue  # bound varies inside the loop
        preheader = loop.preheader()
        query = preheader.terminator if preheader is not None else None
        if isinstance(bound, ConstantInt):
            bound_lo = bound_hi = bound.signed_value
        elif query is not None:
            bound_range = analysis.int_range_before(query, bound)
            if bound_range is None:
                continue
            bound_lo, bound_hi = bound_range.lo, bound_range.hi
        else:
            continue  # no program point to prove wrap facts at
        bits_ty = phi.type
        if not isinstance(bits_ty, IntType):
            continue
        type_max = bits_ty.max_signed
        if predicate == "ne":
            # Step 1 hits the bound exactly -- provided it starts at
            # or below it on every execution.
            if preheader is None:
                continue
            try:
                init_v = phi.incoming_value_for(preheader)
            except KeyError:
                continue
            if isinstance(init_v, ConstantInt):
                init_hi = init_v.signed_value
            else:
                init_range = analysis.int_range_before(query, init_v)
                if init_range is None:
                    continue
                init_hi = init_range.hi
            if init_hi > bound_lo:
                continue
        else:
            # The overshoot after the final in-bound IV must not wrap:
            # max in-loop IV is bound-1 (slt) / bound (sle), plus step.
            overshoot = bound_hi + step - (1 if predicate == "slt" else 0)
            if overshoot > type_max:
                continue
        return True
    return False


def analyze_counted_loop(
    loop: Loop,
    domtree: DominatorTree,
    analysis: FunctionRangeAnalysis,
) -> Optional[CountedLoop]:
    """Recognize ``loop`` as a counted loop, or return None.

    A nested loop is acceptable only when it provably terminates: an
    unbounded subloop could keep the outer loop from ever reaching the
    iterations a hoisted check already covered.
    """
    if not all(_loop_terminates(sub, domtree, analysis)
               for sub in loop.subloops):
        return None
    preheader = loop.preheader()
    if preheader is None:
        return None
    if len(loop.latches) != 1:
        return None
    latch = loop.latches[0]
    header = loop.header

    term = header.terminator
    if not isinstance(term, CondBr):
        return None
    in_true = term.true_block in loop.blocks
    in_false = term.false_block in loop.blocks
    if in_true == in_false:
        return None  # both arms inside (no exit) or both outside
    # Every other block stays strictly inside the loop: the header's
    # compare is the only exit, so the trip count is exact.
    for block in loop.block_order:
        if block is header:
            continue
        if any(succ not in loop.blocks for succ in block.successors):
            return None
    for block in loop.block_order:
        for inst in block.instructions:
            if _may_abort_call(inst):
                return None

    cond, taken = _peel_condition(term.condition, in_true)
    if not isinstance(cond, ICmp):
        return None

    # Find the IV among the header phis: two incomings (preheader,
    # latch), constant init, latch value ``add iv, +step``.
    candidate: Optional[Tuple[Phi, int, int]] = None
    for phi in header.phis():
        if len(phi.incoming_blocks) != 2:
            continue
        if phi is not cond.lhs and phi is not cond.rhs:
            continue
        try:
            init_v = phi.incoming_value_for(preheader)
            next_v = phi.incoming_value_for(latch)
        except KeyError:
            continue
        if not isinstance(init_v, ConstantInt):
            continue
        if not (isinstance(next_v, BinOp) and next_v.opcode == "add"):
            continue
        if next_v.lhs is phi and isinstance(next_v.rhs, ConstantInt):
            step = next_v.rhs.signed_value
        elif next_v.rhs is phi and isinstance(next_v.lhs, ConstantInt):
            step = next_v.lhs.signed_value
        else:
            continue
        if step <= 0:
            continue
        if not (isinstance(next_v.parent, BasicBlock)
                and next_v.parent in loop.blocks):
            continue
        candidate = (phi, init_v.signed_value, step)
        break
    if candidate is None:
        return None
    iv, init, step = candidate

    predicate = cond.predicate
    bound = cond.rhs
    if cond.rhs is iv:
        predicate = _SWAPPED[predicate]
        bound = cond.lhs
    elif cond.lhs is not iv:
        return None
    if not taken:
        predicate = _NEGATED[predicate]
    if predicate not in _CONTINUE_PREDICATES:
        return None
    if predicate == "ne" and step != 1:
        return None  # step could jump over the bound: unbounded loop
    if not available_outside(bound, preheader.terminator, domtree):
        return None

    # Prove the loop runs at least once: ``init < bound`` (``<=`` for
    # sle) must hold on every execution reaching the preheader.  The
    # range fact at the preheader terminator incorporates any guard
    # branches (``if (n > 0)``) on the way in.
    if isinstance(bound, ConstantInt):
        bound_lo = bound_hi = bound.signed_value
    else:
        bound_range = analysis.int_range_before(preheader.terminator, bound)
        if bound_range is None:
            return None
        bound_lo, bound_hi = bound_range.lo, bound_range.hi
    if predicate == "sle":
        if init > bound_lo:
            return None
    elif init >= bound_lo:
        return None

    # Wrap soundness.  The VM's arithmetic is fixed-width, so the
    # model (exact integers) is only faithful when nothing wraps:
    # ``last_hi + step`` -- the largest value the latch increment can
    # produce, and the IV of the final header entry -- must fit the
    # IV's type.  The magnitude cap additionally keeps the preheader's
    # synthesized i64 hull arithmetic exact.
    iv_ty = iv.type
    if not isinstance(iv_ty, IntType):
        return None
    if max(abs(init), abs(bound_lo), abs(bound_hi)) > _MAG_LIMIT:
        return None
    if predicate == "sle":
        last_hi = init + ((bound_hi - init) // step) * step
    else:  # slt / ne
        last_hi = init + ((bound_hi - 1 - init) // step) * step
    if last_hi + step > iv_ty.max_signed:
        return None

    static_last: Optional[int] = None
    if isinstance(bound, ConstantInt):
        b = bound.signed_value
        if predicate == "sle":
            static_last = init + ((b - init) // step) * step
        else:  # slt / ne
            static_last = init + ((b - 1 - init) // step) * step

    return CountedLoop(loop=loop, preheader=preheader, latch=latch, iv=iv,
                       init=init, step=step, predicate=predicate,
                       bound=bound, last_hi=last_hi, static_last=static_last)


# ----------------------------------------------------------------------
# Affine pointer decomposition
# ----------------------------------------------------------------------

_MAX_DEPTH = 24


def _model_extremes(model: Tuple[int, int],
                    iv_range: Tuple[int, int]) -> Tuple[int, int]:
    """Min/max of ``a*iv + b`` over the inclusive IV range (linear, so
    attained at the endpoints)."""
    a, b = model
    lo, hi = a * iv_range[0] + b, a * iv_range[1] + b
    return (lo, hi) if lo <= hi else (hi, lo)


def _fits_type(model: Tuple[int, int], bits: int,
               iv_range: Tuple[int, int]) -> bool:
    """Does ``a*iv + b`` stay inside the signed ``bits``-wide range for
    every IV value the expression is evaluated at?  When it does, the
    VM's wrapping result equals the exact-integer model."""
    lo, hi = _model_extremes(model, iv_range)
    return lo >= -(1 << (bits - 1)) and hi <= (1 << (bits - 1)) - 1


def _affine_int(value: Value, iv: Optional[Phi],
                iv_range: Tuple[int, int],
                depth: int = 0) -> Optional[Tuple[int, int]]:
    """``value == a*iv + b`` exactly for every IV value in the
    inclusive ``iv_range``.  The VM's arithmetic wraps at each node's
    type width, so exactness requires a per-node proof that the
    modeled value fits that type over the whole range: an i32
    ``i * 0x40000000`` that wraps would make the executed address
    diverge from the model in either direction, and a negative value
    flowing through ``zext`` is not value-preserving.  Any node
    without such a proof rejects the whole expression."""
    if depth > _MAX_DEPTH:
        return None
    if iv is not None and value is iv:
        # The recognizer proved every IV value in iv_range fits the
        # IV's own type (last_hi + step no-wrap check).
        return (1, 0)
    if isinstance(value, ConstantInt):
        return (0, value.signed_value)
    if isinstance(value, Cast):
        operand = _affine_int(value.value, iv, iv_range, depth + 1)
        if operand is None:
            return None
        if value.opcode == "sext":
            return operand  # value-preserving on signed values
        if value.opcode == "zext":
            # Only value-preserving when the operand is non-negative
            # on every iteration.
            if _model_extremes(operand, iv_range)[0] < 0:
                return None
            return operand
        return None  # trunc folds wrapped values back into range
    if isinstance(value, BinOp):
        ty = value.type
        if not isinstance(ty, IntType):
            return None
        result: Optional[Tuple[int, int]] = None
        if value.opcode in ("add", "sub"):
            lhs = _affine_int(value.lhs, iv, iv_range, depth + 1)
            rhs = _affine_int(value.rhs, iv, iv_range, depth + 1)
            if lhs is None or rhs is None:
                return None
            if value.opcode == "add":
                result = (lhs[0] + rhs[0], lhs[1] + rhs[1])
            else:
                result = (lhs[0] - rhs[0], lhs[1] - rhs[1])
        elif value.opcode == "mul":
            lhs = _affine_int(value.lhs, iv, iv_range, depth + 1)
            rhs = _affine_int(value.rhs, iv, iv_range, depth + 1)
            if lhs is None or rhs is None:
                return None
            if lhs[0] == 0:
                result = (lhs[1] * rhs[0], lhs[1] * rhs[1])
            elif rhs[0] == 0:
                result = (lhs[0] * rhs[1], lhs[1] * rhs[1])
            else:
                return None
        elif value.opcode == "shl":
            lhs = _affine_int(value.lhs, iv, iv_range, depth + 1)
            if lhs is None or not isinstance(value.rhs, ConstantInt):
                return None
            shift = value.rhs.signed_value
            # The VM shifts by ``rhs % bits``: a shift >= the width
            # would not mean what the model says.
            if not 0 <= shift < ty.bits:
                return None
            result = (lhs[0] << shift, lhs[1] << shift)
        if result is None:
            return None
        # The operands are exact by induction, so the mathematical
        # result equals the model; fitting the node's type makes the
        # wrapped result equal it too.
        if not _fits_type(result, ty.bits, iv_range):
            return None
        return result
    return None


@dataclass
class AffinePointer:
    """``address == root + slope*iv + intercept`` (bytes)."""

    root: Value
    slope: int
    intercept: int


def affine_pointer(
    pointer: Value,
    iv: Optional[Phi],
    point: Instruction,
    domtree: DominatorTree,
    iv_range: Optional[Tuple[int, int]] = None,
) -> Optional[AffinePointer]:
    """Decompose a checked pointer into an affine byte offset from a
    root that is available at ``point`` (the preheader terminator for
    hoisting; the first run member for block coalescing).  With
    ``iv=None`` only constant offsets qualify (slope 0).

    ``iv_range`` is the inclusive range of IV values the pointer is
    evaluated at (``CountedLoop.iv_range`` -- mind header residency);
    it drives the per-node no-wrap proofs, so it is mandatory whenever
    ``iv`` is given."""
    if iv is not None and iv_range is None:
        raise ValueError("iv_range is required when decomposing "
                         "against an induction variable")
    if iv_range is None:
        iv_range = (0, 0)
    slope = 0
    intercept = 0
    value = pointer
    for _ in range(_MAX_DEPTH):
        if isinstance(value, Cast) and value.opcode == "bitcast":
            value = value.value
            continue
        if isinstance(value, GEP):
            pointer_ty = value.pointer.type
            assert isinstance(pointer_ty, PointerType)
            current = pointer_ty.pointee
            for position, index in enumerate(value.indices):
                if position == 0:
                    scale = size_of(current)
                elif isinstance(current, ArrayType):
                    current = current.element
                    scale = size_of(current)
                elif isinstance(current, StructType):
                    if not isinstance(index, ConstantInt):
                        return None
                    intercept += struct_field_offset(current, index.value)
                    current = current.fields[index.value]
                    continue
                else:
                    return None
                affine = _affine_int(index, iv, iv_range)
                if affine is None:
                    return None
                slope += scale * affine[0]
                intercept += scale * affine[1]
            value = value.pointer
            continue
        break
    else:
        return None
    root = value
    if isinstance(root, (GEP, Cast)):
        return None  # depth exhausted mid-chain
    if not available_outside(root, point, domtree):
        return None
    # Keep the whole modeled byte-offset hull far below 2**63: the VM
    # adds GEP offsets to the address modulo 2**64, and the preheader's
    # synthesized extent arithmetic runs in i64 -- both exact only
    # while nothing approaches the wrap boundary.
    lo_off, hi_off = _model_extremes((slope, intercept), iv_range)
    if (abs(intercept) > _MAG_LIMIT or abs(lo_off) > _MAG_LIMIT
            or abs(hi_off) > _MAG_LIMIT):
        return None
    return AffinePointer(root=root, slope=slope, intercept=intercept)


def extent_bytes(
    affine: AffinePointer, counted: CountedLoop, width: int,
    header_resident: bool = False,
) -> Optional[Tuple[int, int]]:
    """Static accessed extent ``[lo, hi)`` relative to the root, when
    the trip count is static.  Used for the proven-safe /
    proven-violating loop verdicts.  Header-resident accesses also run
    on the final exit-test entry (``iv == last + step``), so their
    hull is one step wider."""
    if counted.static_last is None:
        return None
    last_iv = counted.static_last + (counted.step if header_resident else 0)
    first = affine.slope * counted.init + affine.intercept
    last = affine.slope * last_iv + affine.intercept
    lo = min(first, last)
    hi = max(first, last) + width
    return (lo, hi)

"""Control-flow graph utilities."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..ir.module import BasicBlock, Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    return block.successors


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessors of every block, computed in one pass."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors:
            preds.setdefault(succ, []).append(block)
    return preds


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if not fn.blocks:
        return set()
    seen: Set[BasicBlock] = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors)
    return seen


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder of a DFS from the entry block.

    Reverse postorder visits every block before its successors (except
    along back edges), which makes dataflow analyses converge quickly.
    """
    if not fn.blocks:
        return []
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on long CFGs.
    stack: List[tuple] = [(fn.entry, iter(fn.entry.successors))]
    visited.add(fn.entry)
    while stack:
        block, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succ.successors)))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder

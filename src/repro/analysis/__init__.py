"""Program analyses: CFG utilities, dominators, natural loops."""

from .cfg import predecessor_map, reachable_blocks, reverse_postorder
from .dominators import DominatorTree
from .loops import Loop, LoopInfo

__all__ = [
    "DominatorTree",
    "Loop",
    "LoopInfo",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
]

"""Program analyses: CFG utilities, dominators, natural loops, and the
forward-dataflow layer (value ranges, pointer provenance, lint)."""

from .cfg import predecessor_map, reachable_blocks, reverse_postorder
from .dataflow import DataflowClient, ForwardDataflow
from .dominators import DominatorTree
from .loops import Loop, LoopInfo
from .ranges import (
    FunctionRangeAnalysis,
    IntRange,
    PtrFact,
    ReturnSummaries,
)

__all__ = [
    "DataflowClient",
    "DominatorTree",
    "ForwardDataflow",
    "FunctionRangeAnalysis",
    "IntRange",
    "Loop",
    "LoopInfo",
    "PtrFact",
    "ReturnSummaries",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
]

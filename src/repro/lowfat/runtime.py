"""Low-Fat Pointers runtime: the natives the instrumented code calls.

The Low-Fat mechanism (:mod:`repro.core.lf_mechanism`) lowers its
instrumentation targets into calls to the natives registered here:

* ``__lf_malloc`` / ``__lf_calloc`` / ``__lf_realloc`` / ``__lf_free``
  -- the custom allocator ("use custom malloc" in Table 1);
* ``__lf_alloca`` -- region-backed stack allocation replacing
  ``alloca`` ("mirror, replace");
* ``__lf_compute_base`` -- recover the witness base from a pointer
  value (Figure 4 arithmetic); returns the NO_BASE sentinel for
  non-low-fat pointers (wide bounds);
* ``__lf_check`` -- the dereference check of Figure 5;
* ``__lf_invariant_check`` -- the escape check establishing the
  in-bounds invariant at stores/calls/returns/ptr-to-int casts
  (Sections 3.3 and 4.2).

The runtime also supplies the VM's global placer so global variables
are mirrored into low-fat regions (Duck & Yap 2018).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..errors import MemSafetyViolation
from ..vm import costs
from ..vm.stats import RuntimeStats
from . import layout
from .allocator import LowFatAllocator

if TYPE_CHECKING:  # pragma: no cover
    from ..vm.interpreter import VirtualMachine

_CHECK_COST = costs.INTRINSIC_COSTS["__lf_check"]
_INVARIANT_COST = costs.INTRINSIC_COSTS["__lf_invariant_check"]


def _wide_reason(vm: "VirtualMachine", ptr: int) -> str:
    """Why did this access run with wide bounds?  Only consulted when
    profiling is on; classifies by the allocation the pointer actually
    refers to (paper Section 4.3's sources of unprotected memory)."""
    alloc = vm.memory.find(ptr)
    if alloc is None:
        return "no-allocation"
    kind = getattr(alloc, "kind", None)
    if kind == "heap":
        return "oversized-or-fallback-allocation"
    if kind == "global":
        return "unmirrored-global"
    if kind == "stack":
        return "uninstrumented-stack"
    if kind == "lowfat":
        return "wide-witness-into-lowfat-region"
    return "non-lowfat-pointer"


class LowFatRuntime:
    def __init__(self, region_capacity: Optional[int] = None):
        self.region_capacity = region_capacity
        self.allocator: Optional[LowFatAllocator] = None
        self.vm: Optional["VirtualMachine"] = None

    # -- installation ------------------------------------------------------
    def install(self, vm: "VirtualMachine") -> None:
        self.vm = vm
        self.allocator = LowFatAllocator(
            vm.memory, vm.heap, vm.stats, self.region_capacity
        )
        vm.register_native("__lf_malloc", self._malloc)
        vm.register_native("__lf_calloc", self._calloc)
        vm.register_native("__lf_realloc", self._realloc)
        vm.register_native("__lf_free", self._free)
        vm.register_native("__lf_alloca", self._alloca)
        vm.register_native("__lf_compute_base", self._compute_base)
        vm.register_native("__lf_check", self._check)
        vm.register_native("__lf_invariant_check", self._invariant_check)
        vm.global_placer = self._place_global

    # -- allocation ----------------------------------------------------------
    def _malloc(self, vm: "VirtualMachine", args: List[int]) -> int:
        return self.allocator.malloc(args[0]).base

    def _calloc(self, vm: "VirtualMachine", args: List[int]) -> int:
        count, size = args
        return self.allocator.malloc(count * size).base

    def _realloc(self, vm: "VirtualMachine", args: List[int]) -> int:
        old_ptr, new_size = args
        new_alloc = self.allocator.malloc(new_size)
        if old_ptr != 0:
            old_alloc = vm.memory.find(old_ptr)
            if old_alloc is not None:
                n = min(old_alloc.size, new_size)
                new_alloc.data[0:n] = old_alloc.data[0:n]
                self.allocator.free(old_ptr)
        return new_alloc.base

    def _free(self, vm: "VirtualMachine", args: List[int]) -> None:
        self.allocator.free(args[0])
        vm.stats.heap_frees += 1

    def _alloca(self, vm: "VirtualMachine", args: List[int]) -> int:
        alloc = self.allocator.stack_alloc(args[0])
        vm.register_frame_cleanup(lambda: self.allocator.stack_release(alloc))
        return alloc.base

    def _place_global(self, size: int, name: str, external: bool = False):
        if external:
            # Globals of uninstrumented libraries are not mirrored into
            # the low-fat regions (paper Section 4.3): accesses through
            # them get wide bounds.
            return self.vm.globals_allocator.allocate(size, name)
        alloc = self.allocator.place_global(size, name)
        if alloc is None:
            return self.vm.globals_allocator.allocate(size, name)
        return alloc

    # -- witness arithmetic -----------------------------------------------------
    def _compute_base(self, vm: "VirtualMachine", args: List[int]) -> int:
        return layout.base_of(args[0])

    # -- checks -------------------------------------------------------------------
    def _check(self, vm: "VirtualMachine", args: List) -> None:
        ptr, width, base = args[0], args[1], args[2]
        site = args[3] if len(args) > 3 else None
        region = layout.region_index(base)
        size = layout.allocation_size(region)
        if size == 0:
            # Non-low-fat witness: wide bounds, access is unchecked.
            reason = _wide_reason(vm, ptr) if vm.stats.profile else None
            vm.stats.record_check(
                str(site), wide=True, cost=_CHECK_COST, reason=reason
            )
            return
        vm.stats.record_check(str(site), wide=False, cost=_CHECK_COST)
        if (ptr - base) % (1 << 64) > size - width:
            raise MemSafetyViolation(
                "deref",
                "Low-Fat Pointers: access outside the witness allocation",
                pointer=ptr, base=base, bound=base + size,
                site=str(site),
            )

    def _invariant_check(self, vm: "VirtualMachine", args: List) -> None:
        """Figure 5 arithmetic applied at escape points (width 1 would
        reject one-past-the-end pointers, which the padded allocation
        admits -- width 0 here, so base+size itself stays legal)."""
        ptr, base = args[0], args[1]
        site = args[2] if len(args) > 2 else None
        vm.stats.record_invariant(str(site), cost=_INVARIANT_COST)
        region = layout.region_index(base)
        size = layout.allocation_size(region)
        if size == 0:
            return  # non-low-fat pointer: no invariant to establish
        if (ptr - base) % (1 << 64) > size:
            raise MemSafetyViolation(
                "invariant",
                "Low-Fat Pointers: escaping pointer is out of bounds of "
                "its object (out-of-bounds pointer arithmetic, cf. "
                "paper Section 4.2)",
                pointer=ptr, base=base, bound=base + size,
                site=str(site),
            )

"""Low-Fat Pointers address-space layout (paper Figures 3 and 4).

The virtual address space dedicates one region per allocation size
class.  Size classes are the powers of two from 2^4 (16 B) to 2^30
(1 GiB); each region spans ``REGION_SIZE`` (4 GiB) bytes, so region
``r`` covers ``[r * 2^32, (r+1) * 2^32)`` and holds objects of size
``2^(3+r)``.

With this layout, base and size are recoverable from a pointer value
alone:

* ``region_index(p) = p >> 32``;
* ``allocation_size(r) = 1 << (3 + r)`` for valid ``r``;
* ``base(p) = p & ~(size - 1)`` (size classes are powers of two and
  allocations are aligned to their size).

Allocations are padded by one byte beyond the request to keep
one-past-the-end pointers inside the object's class slot (paper
footnote 3), so a request of exactly ``2^30`` bytes does *not* fit the
largest class and falls back to the standard allocator -- the 429mcf
effect of Table 2.
"""

from __future__ import annotations

MIN_LOG = 4            # smallest class: 16 B
MAX_LOG = 30           # largest class: 1 GiB
NUM_REGIONS = MAX_LOG - MIN_LOG + 1   # 27
REGION_SHIFT = 32
REGION_SIZE = 1 << REGION_SHIFT
LOWFAT_BASE = 1 * REGION_SIZE
LOWFAT_END = (NUM_REGIONS + 1) * REGION_SIZE

#: Sentinel meaning "no low-fat base available" (wide bounds).
NO_BASE = 0


def region_index(address: int) -> int:
    """Region index of an address; valid indices are 1..NUM_REGIONS."""
    return address >> REGION_SHIFT


def is_lowfat(address: int) -> bool:
    return 1 <= region_index(address) <= NUM_REGIONS


def allocation_size(region: int) -> int:
    """The (padded) object size of a region, or 0 for non-low-fat."""
    if 1 <= region <= NUM_REGIONS:
        return 1 << (MIN_LOG - 1 + region)
    return 0


def size_class_for(requested: int) -> int:
    """The region index whose class fits ``requested`` bytes plus the
    one-byte one-past-the-end pad, or 0 if no class is large enough."""
    needed = max(requested + 1, 1)
    log = max((needed - 1).bit_length(), MIN_LOG)
    if log > MAX_LOG:
        return 0
    return log - MIN_LOG + 1


def region_base(region: int) -> int:
    return region * REGION_SIZE


def base_of(address: int) -> int:
    """Recover the allocation base from a pointer value (Figure 4)."""
    size = allocation_size(region_index(address))
    if size == 0:
        return NO_BASE
    return address & ~(size - 1)


def size_of_pointer(address: int) -> int:
    """Recover the (padded) allocation size from a pointer value."""
    return allocation_size(region_index(address))

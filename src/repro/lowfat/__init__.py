"""Low-Fat Pointers: region layout, allocator, and runtime."""

from . import layout
from .allocator import LowFatAllocator
from .runtime import LowFatRuntime

__all__ = ["LowFatAllocator", "LowFatRuntime", "layout"]

"""The low-fat memory allocator.

Groups allocations into per-size-class regions (see
:mod:`repro.lowfat.layout`).  Heap allocations bump within their
region; requests that exceed the largest class (or a region whose
configured capacity is exhausted) *fall back to the standard
allocator*, producing non-low-fat pointers that the instrumentation
can only check with wide bounds -- the exact mechanism behind the
unchecked accesses of the paper's Table 2 (429mcf) and Section 4.6.

Stack allocations (for ``__lf_alloca``) come from the same regions but
keep per-class LIFO free lists so loops that repeatedly enter a frame
reuse addresses, mirroring the low-fat stack scheme of Duck et al.
(NDSS'17) at the level of behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..vm.memory import Allocation, Memory, StandardAllocator
from ..vm.stats import RuntimeStats
from . import layout


class LowFatAllocator:
    def __init__(
        self,
        memory: Memory,
        fallback: StandardAllocator,
        stats: Optional[RuntimeStats] = None,
        region_capacity: Optional[int] = None,
    ):
        """``region_capacity`` caps the bytes handed out per region
        (default: the full region), letting tests reproduce region
        exhaustion."""
        self.memory = memory
        self.fallback = fallback
        self.stats = stats
        self.region_capacity = (
            region_capacity if region_capacity is not None else layout.REGION_SIZE
        )
        self._cursors: Dict[int, int] = {}
        self._free_stacks: Dict[int, List[int]] = {}
        self._count = 0

    # -- heap ----------------------------------------------------------
    def malloc(self, size: int, name: str = "", stack: bool = False) -> Allocation:
        region = layout.size_class_for(size)
        if region == 0:
            return self._fallback_alloc(size, name)
        class_size = layout.allocation_size(region)
        base = self._take_base(region, class_size, stack)
        if base is None:
            return self._fallback_alloc(size, name)
        alloc = Allocation(
            base=base,
            size=class_size,          # padded: OOB into padding succeeds
            kind="lowfat",
            name=name or f"lowfat#{self._count}",
            requested_size=size,
        )
        self._count += 1
        if self.stats is not None:
            self.stats.lowfat_allocs += 1
        return self.memory.map(alloc)

    def _take_base(self, region: int, class_size: int, stack: bool) -> Optional[int]:
        if stack:
            free = self._free_stacks.setdefault(region, [])
            if free:
                return free.pop()
        cursor = self._cursors.get(region, 0)
        if cursor + class_size > self.region_capacity:
            return None  # region exhausted
        self._cursors[region] = cursor + class_size
        return layout.region_base(region) + cursor

    def _fallback_alloc(self, size: int, name: str) -> Allocation:
        if self.stats is not None:
            self.stats.lowfat_fallback_allocs += 1
        return self.fallback.malloc(size, name or "lowfat-fallback")

    def free(self, address: int) -> None:
        if address == 0:
            return
        if not layout.is_lowfat(address):
            self.fallback.free(address)
            return
        alloc = self.memory.find(address)
        if alloc is None or alloc.base != address:
            from ..errors import MemoryFault

            raise MemoryFault(address, 0, "low-fat free of invalid pointer")
        alloc.freed = True

    # -- stack discipline -------------------------------------------------
    def stack_alloc(self, size: int, name: str = "") -> Allocation:
        return self.malloc(size, name or "lf-stack", stack=True)

    def stack_release(self, alloc: Allocation) -> None:
        """Return a stack allocation's slot for reuse.

        The allocation is unmapped entirely, so dangling stack pointers
        fault; the address goes back on the class free list.
        """
        if alloc.kind != "lowfat":
            # Fallback allocation: tombstone like a heap free.
            alloc.freed = True
            return
        # Mark the (about-to-be-dead) object freed before unmapping so
        # stale per-site caches in the compiled engine reject it via
        # the cheap ``freed`` flag instead of a global epoch bump; the
        # slot itself is recycled with a fresh Allocation on reuse.
        alloc.freed = True
        self.memory.unmap(alloc)
        region = layout.region_index(alloc.base)
        self._free_stacks.setdefault(region, []).append(alloc.base)

    # -- globals ----------------------------------------------------------
    def place_global(self, size: int, name: str) -> Allocation:
        """Global placement in low-fat regions (Duck & Yap 2018).

        Oversized globals fall back to the standard globals segment
        outside the low-fat space (wide bounds)."""
        region = layout.size_class_for(size)
        if region == 0:
            return None  # caller falls back
        return self.malloc(size, name)

"""Loop-invariant code motion.

Hoists loop-invariant computations into the loop preheader:

* *speculatable* instructions (arithmetic, geps, casts, compares,
  selects and ``readnone`` calls) are hoisted whenever their operands
  are loop-invariant;
* *loads* (and ``readonly`` calls, e.g. SoftBound trie lookups) are
  hoisted only when (a) nothing in the loop may write memory, (b) the
  instruction is guaranteed to execute (its block dominates all loop
  exits), and (c) **no possibly-aborting call precedes it** -- a hoisted
  load must not fault before a check that would have aborted first.

Rule (c) is the mechanism behind the paper's Section 5.5 finding:
memory-safety checks "are very effective at preventing optimizations".
When the instrumentation runs *early* in the pipeline, its may-abort
check calls sit inside every loop and block LICM; at late extension
points LICM has already done its work on clean code.
"""

from __future__ import annotations

from typing import List, Set

from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..ir.builder import IRBuilder
from ..ir.instructions import (
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import Value
from .pass_manager import FunctionPass


def _may_abort(inst: Instruction) -> bool:
    if isinstance(inst, Call):
        callee = inst.callee_function
        if callee is None:
            return True  # indirect call: anything can happen
        return (
            "may_abort" in callee.attributes
            or "noreturn" in callee.attributes
            or not (
                "readnone" in callee.attributes or "readonly" in callee.attributes
            )
        )
    return False


class LICM(FunctionPass):
    name = "licm"

    def run_on_function(self, fn: Function) -> bool:
        domtree = DominatorTree(fn)
        loopinfo = LoopInfo(fn, domtree)
        changed = False
        # Process innermost loops first so code migrates outward
        # through repeated pipeline runs.
        loops = sorted(loopinfo.all_loops(), key=lambda l: -l.depth)
        for loop in loops:
            changed |= self._process_loop(fn, loop, domtree)
        return changed

    def _process_loop(self, fn: Function, loop: Loop, domtree: DominatorTree) -> bool:
        preheader = self._ensure_preheader(fn, loop)
        if preheader is None:
            return False

        loop_may_write = False
        loop_has_abort = False
        for block in loop.blocks:
            for inst in block.instructions:
                if inst.may_write_memory():
                    loop_may_write = True
                if _may_abort(inst):
                    loop_has_abort = True

        exits = loop.exit_blocks()
        invariant: Set[int] = set()

        def is_invariant_value(value: Value) -> bool:
            if not isinstance(value, Instruction):
                return True
            if id(value) in invariant:
                return True
            return value.parent not in loop.blocks

        changed = False
        progress = True
        while progress:
            progress = False
            # RPO, not the membership set: the preheader receives the
            # hoisted instructions in visit order, so iteration order
            # is visible in the output IR.
            for block in loop.block_order:
                if block not in fn.blocks:
                    continue
                for inst in list(block.instructions):
                    if inst.parent is None or id(inst) in invariant:
                        continue
                    if not all(is_invariant_value(op) for op in inst.operands):
                        continue
                    if self._hoistable(inst, loop, domtree, exits,
                                       loop_may_write, loop_has_abort):
                        self._hoist(inst, preheader)
                        invariant.add(id(inst))
                        changed = True
                        progress = True
        return changed

    def _hoistable(
        self,
        inst: Instruction,
        loop: Loop,
        domtree: DominatorTree,
        exits: List[BasicBlock],
        loop_may_write: bool,
        loop_has_abort: bool,
    ) -> bool:
        if isinstance(inst, (BinOp, GEP, ICmp, FCmp, Cast, Select)):
            if isinstance(inst, BinOp) and inst.opcode in (
                "sdiv", "udiv", "srem", "urem",
            ):
                # Division can trap; require guaranteed execution.
                return self._guaranteed(inst, domtree, exits)
            return True
        if isinstance(inst, Call):
            callee = inst.callee_function
            if callee is None:
                return False
            if "readnone" in callee.attributes and "may_abort" not in callee.attributes:
                return True
            if "readonly" in callee.attributes and "may_abort" not in callee.attributes:
                return (
                    not loop_may_write
                    and not loop_has_abort
                    and self._guaranteed(inst, domtree, exits)
                )
            return False
        if isinstance(inst, Load):
            return (
                not loop_may_write
                and not loop_has_abort
                and self._guaranteed(inst, domtree, exits)
            )
        return False

    def _guaranteed(self, inst: Instruction, domtree: DominatorTree,
                    exits: List[BasicBlock]) -> bool:
        block = inst.parent
        assert block is not None
        return all(domtree.dominates_block(block, e) for e in exits) if exits else False

    def _hoist(self, inst: Instruction, preheader: BasicBlock) -> None:
        block = inst.parent
        assert block is not None
        block.remove_instruction(inst)
        term = preheader.terminator
        assert term is not None
        inst.parent = None
        preheader.insert(preheader.index_of(term), inst)

    def _ensure_preheader(self, fn: Function, loop: Loop) -> BasicBlock:
        existing = loop.preheader()
        if existing is not None:
            return existing
        header = loop.header
        outside_preds = [p for p in header.predecessors if p not in loop.blocks]
        if not outside_preds:
            return None
        preheader = fn.add_block(fn.next_name("preheader"))
        # Move the position right before the header for readable output.
        fn.blocks.remove(preheader)
        fn.blocks.insert(fn.blocks.index(header), preheader)
        builder = IRBuilder(preheader)
        builder.br(header)
        for pred in outside_preds:
            term = pred.terminator
            assert term is not None
            term.replace_successor(header, preheader)  # type: ignore[attr-defined]
        # Split header phis between outside and loop edges.
        for phi in header.phis():
            outside_incoming = [
                (v, b) for v, b in phi.incoming if b in outside_preds
            ]
            if not outside_incoming:
                continue
            if len(outside_incoming) == 1:
                value = outside_incoming[0][0]
            else:
                new_phi = Phi(phi.type, fn.next_name("ph"))
                preheader.insert(0, new_phi)
                for v, b in outside_incoming:
                    new_phi.add_incoming(v, b)
                value = new_phi
            for _, b in outside_incoming:
                phi.remove_incoming(b)
            phi.add_incoming(value, preheader)
        return preheader

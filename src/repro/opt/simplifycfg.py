"""CFG simplification.

Four local rewrites to a fixpoint:

1. remove blocks unreachable from the entry;
2. fold conditional branches on constant conditions;
3. merge a block into its unique predecessor when the predecessor
   branches unconditionally to it;
4. remove trivial phi nodes (single incoming value, or all incoming
   values identical).
"""

from __future__ import annotations

from typing import List

from ..analysis.cfg import reachable_blocks
from ..ir.instructions import Br, CondBr, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstantInt, UndefValue
from .pass_manager import FunctionPass


class SimplifyCFG(FunctionPass):
    name = "simplifycfg"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        while self._run_once(fn):
            changed = True
        return changed

    def _run_once(self, fn: Function) -> bool:
        changed = False
        changed |= self._remove_unreachable(fn)
        changed |= self._fold_constant_branches(fn)
        changed |= self._merge_blocks(fn)
        changed |= self._simplify_phis(fn)
        return changed

    # -- 1: unreachable block elimination --------------------------------
    def _remove_unreachable(self, fn: Function) -> bool:
        reachable = reachable_blocks(fn)
        dead = [b for b in fn.blocks if b not in reachable]
        if not dead:
            return False
        dead_set = set(dead)
        # Remove phi edges coming from dead blocks.
        for block in fn.blocks:
            if block in dead_set:
                continue
            for phi in block.phis():
                for pred in list(phi.incoming_blocks):
                    if pred in dead_set:
                        phi.remove_incoming(pred)
        for block in dead:
            # Break the use-def links of dead instructions.
            for inst in list(block.instructions):
                if inst.num_uses:
                    inst.replace_all_uses_with(UndefValue(inst.type))
                inst.erase_from_parent()
            fn.remove_block(block)
        return True

    # -- 2: constant condbr folding -----------------------------------------
    def _fold_constant_branches(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, CondBr):
                continue
            cond = term.condition
            if isinstance(cond, ConstantInt):
                taken = term.true_block if cond.value else term.false_block
                not_taken = term.false_block if cond.value else term.true_block
                if not_taken is not taken:
                    for phi in not_taken.phis():
                        if block in phi.incoming_blocks:
                            phi.remove_incoming(block)
                term.erase_from_parent()
                block.append(Br(taken))
                changed = True
            elif term.true_block is term.false_block:
                target = term.true_block
                term.erase_from_parent()
                block.append(Br(target))
                changed = True
        return changed

    # -- 3: block merging ------------------------------------------------------
    def _merge_blocks(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block not in fn.blocks:
                continue
            term = block.terminator
            if not isinstance(term, Br):
                continue
            succ = term.target
            if succ is block or succ is fn.entry:
                continue
            preds = succ.predecessors
            if len(preds) != 1 or preds[0] is not block:
                continue
            # Fold succ's phis (single incoming edge).
            for phi in succ.phis():
                phi.replace_all_uses_with(phi.incoming_value_for(block))
                phi.erase_from_parent()
            term.erase_from_parent()
            for inst in list(succ.instructions):
                succ.remove_instruction(inst)
                inst.parent = None
                block.append(inst)
            # Rewire grandchildren's phis to the merged block.
            for grandchild in block.successors:
                for phi in grandchild.phis():
                    for i, pred in enumerate(phi.incoming_blocks):
                        if pred is succ:
                            phi.incoming_blocks[i] = block
            fn.remove_block(succ)
            changed = True
        return changed

    # -- 4: trivial phi elimination ------------------------------------------------
    def _simplify_phis(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for phi in list(block.phis()):
                values = [v for v in phi.operands if v is not phi]
                if not values:
                    continue
                first = values[0]
                if all(v is first for v in values):
                    phi.replace_all_uses_with(first)
                    phi.erase_from_parent()
                    changed = True
        return changed

"""Function inlining.

Inlines calls to small defined functions.  This matters for fidelity:
clang at -O2/-O3 inlines small helpers, so the memory accesses the
instrumentation sees at late extension points sit directly in hot loops
rather than behind calls.

Implementation: the call block is split; the callee's blocks are cloned
with arguments substituted; returns branch to the continuation block,
where a phi merges the return values.  Static entry-block allocas of
the callee are re-anchored in the caller's entry block.  Cloning is
two-phase (create, then remap operands) so cross-block forward
references -- e.g. loop phis -- resolve correctly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import VoidType
from ..ir.values import UndefValue, Value
from .pass_manager import Pass

DEFAULT_THRESHOLD = 35


def _clone_shallow(
    inst: Instruction, block_map: Dict[BasicBlock, BasicBlock]
) -> Instruction:
    """Clone one instruction, keeping the *original* value operands.

    Branch targets and phi incoming blocks are remapped immediately
    (``block_map`` is complete before cloning starts); value operands
    are remapped in a second phase.
    """
    if isinstance(inst, Alloca):
        clone: Instruction = Alloca(inst.allocated_type, inst.count, inst.name)
    elif isinstance(inst, Load):
        clone = Load(inst.pointer, inst.name)
    elif isinstance(inst, Store):
        clone = Store(inst.value, inst.pointer)
    elif isinstance(inst, GEP):
        clone = GEP(inst.pointer, inst.indices, inst.name, inst.inbounds)
    elif isinstance(inst, Phi):
        phi = Phi(inst.type, inst.name)
        for value, block in inst.incoming:
            phi.add_incoming(value, block_map[block])
        clone = phi
    elif isinstance(inst, Select):
        clone = Select(inst.condition, inst.true_value, inst.false_value, inst.name)
    elif isinstance(inst, BinOp):
        clone = BinOp(inst.opcode, inst.lhs, inst.rhs, inst.name)
    elif isinstance(inst, ICmp):
        clone = ICmp(inst.predicate, inst.lhs, inst.rhs, inst.name)
    elif isinstance(inst, FCmp):
        clone = FCmp(inst.predicate, inst.lhs, inst.rhs, inst.name)
    elif isinstance(inst, Cast):
        clone = Cast(inst.opcode, inst.value, inst.type, inst.name)
    elif isinstance(inst, Call):
        clone = Call(inst.callee, inst.args, inst.name)
    elif isinstance(inst, Br):
        clone = Br(block_map[inst.target])
    elif isinstance(inst, CondBr):
        clone = CondBr(inst.condition, block_map[inst.true_block],
                       block_map[inst.false_block])
    elif isinstance(inst, Unreachable):
        clone = Unreachable()
    else:
        raise TypeError(f"cannot clone instruction {inst!r}")
    clone.meta = dict(inst.meta)
    return clone


def _function_size(fn: Function) -> int:
    return sum(len(b.instructions) for b in fn.blocks)


def _is_directly_recursive(fn: Function) -> bool:
    for inst in fn.instructions():
        if isinstance(inst, Call) and inst.callee_function is fn:
            return True
    return False


def inline_call(call: Call) -> bool:
    """Inline one call site.  Returns False if the callee is not
    inlinable (declaration, native, self-call, vararg)."""
    callee = call.callee_function
    if callee is None or callee.native or callee.is_declaration:
        return False
    if callee.fnty.vararg:
        return False
    caller_block = call.parent
    assert caller_block is not None
    caller = caller_block.parent
    assert caller is not None
    if callee is caller:
        return False

    # Split the call block: everything after the call moves to `after`.
    after = caller.add_block(caller.next_name("inl.cont"), after=caller_block)
    call_index = caller_block.index_of(call)
    moved = caller_block.instructions[call_index + 1 :]
    for inst in moved:
        caller_block.remove_instruction(inst)
        inst.parent = None
        after.append(inst)
    # Successor phis must now see `after` as the predecessor.
    for succ in after.successors:
        for phi in succ.phis():
            for i, pred in enumerate(phi.incoming_blocks):
                if pred is caller_block:
                    phi.incoming_blocks[i] = after

    # Build the block map, placing clones before `after`.
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in callee.blocks:
        clone_block = BasicBlock(caller.next_name(f"inl.{block.name}"), caller)
        caller.blocks.insert(caller.blocks.index(after), clone_block)
        block_map[block] = clone_block

    # Phase 1: clone instructions (original value operands).
    value_map: Dict[Value, Value] = {}
    for formal, actual in zip(callee.args, call.args):
        value_map[formal] = actual
    returns: List[Tuple[Optional[Value], BasicBlock]] = []
    clones: List[Instruction] = []
    for block in callee.blocks:
        clone_block = block_map[block]
        for inst in block.instructions:
            if isinstance(inst, Ret):
                returns.append((inst.value, clone_block))
                clone_block.append(Br(after))
                continue
            clone = _clone_shallow(inst, block_map)
            clone_block.append(clone)
            clones.append(clone)
            value_map[inst] = clone

    # Phase 2: remap value operands.
    for clone in clones:
        for i, op in enumerate(clone.operands):
            mapped = value_map.get(op)
            if mapped is not None:
                clone.set_operand(i, mapped)

    # Hoist static allocas of the inlined entry into the caller's entry.
    inlined_entry = block_map[callee.entry]
    for inst in list(inlined_entry.instructions):
        if isinstance(inst, Alloca) and inst.count is None:
            inlined_entry.remove_instruction(inst)
            inst.parent = None
            caller.entry.insert(0, inst)

    # Wire the return value(s) into the continuation.
    def mapped_return(value: Optional[Value]) -> Value:
        if value is None:
            return UndefValue(call.type)
        return value_map.get(value, value)

    if call.num_uses:
        if len(returns) == 1:
            call.replace_all_uses_with(mapped_return(returns[0][0]))
        elif len(returns) > 1:
            phi = Phi(call.type, caller.next_name("inl.ret"))
            after.insert(0, phi)
            for value, block in returns:
                phi.add_incoming(mapped_return(value), block)
            call.replace_all_uses_with(phi)
        else:
            call.replace_all_uses_with(UndefValue(call.type))
    call.erase_from_parent()
    caller_block.append(Br(block_map[callee.entry]))
    # If the callee never returns, `after` is unreachable; SimplifyCFG
    # removes it later.  The IR stays structurally valid because `after`
    # inherited the original terminator.
    return True


class Inliner(Pass):
    name = "inline"

    def __init__(self, threshold: int = DEFAULT_THRESHOLD):
        self.threshold = threshold

    def run(self, module: Module) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if fn.is_declaration or fn.native:
                continue
            # Snapshot call sites up front; no cascading inlining within
            # one pass run, which bounds code growth.
            sites = [
                inst
                for inst in fn.instructions()
                if isinstance(inst, Call) and self._should_inline(inst, fn)
            ]
            for site in sites:
                if site.parent is None:
                    continue
                changed |= inline_call(site)
        return changed

    def _should_inline(self, call: Call, caller: Function) -> bool:
        callee = call.callee_function
        if callee is None or callee.native or callee.is_declaration:
            return False
        if callee is caller or _is_directly_recursive(callee):
            return False
        if "noinline" in callee.attributes:
            return False
        return _function_size(callee) <= self.threshold

"""Dead code elimination.

Removes instructions whose results are unused and that have no side
effects.  Calls to ``readonly``/``readnone`` functions count as
removable -- this implements the effect the paper observes in
Section 5.4: when SoftBound's bounds metadata is loaded (a ``readonly``
trie lookup) but no check consumes it, the compiler deletes the load,
so metadata-only configurations underapproximate propagation costs.
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.module import Function
from ..ir.types import VoidType
from .pass_manager import FunctionPass


def _is_trivially_dead(inst: Instruction) -> bool:
    if isinstance(inst.type, VoidType):
        return False
    if inst.num_uses:
        return False
    return not inst.has_side_effects()


class DCE(FunctionPass):
    name = "dce"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        # Iterate to a fixpoint: removing one instruction may make its
        # operands dead.
        worklist = [inst for inst in fn.instructions()]
        while worklist:
            inst = worklist.pop()
            if inst.parent is None or not _is_trivially_dead(inst):
                continue
            operands = [
                op for op in inst.operands if isinstance(op, Instruction)
            ]
            inst.erase_from_parent()
            changed = True
            worklist.extend(operands)
        return changed

"""mem2reg: promote allocas to SSA registers.

The frontend lowers every local variable to an ``alloca`` with explicit
loads and stores; this pass promotes the *non-address-taken* scalar
allocas into SSA values using the classic iterated-dominance-frontier
phi placement and a dominator-tree renaming walk.

Where this pass runs relative to the instrumentation extension point
matters greatly for the paper's pipeline experiments: it always runs
before the earliest extension point (as in clang), so instrumentations
never see spurious checks on promotable locals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.dominators import DominatorTree
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.module import BasicBlock, Function
from ..ir.types import Type
from ..ir.values import UndefValue, Value
from .pass_manager import FunctionPass


def _is_promotable(alloca: Alloca) -> bool:
    if alloca.count is not None:
        return False
    if alloca.allocated_type.is_aggregate():
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
            continue
        return False  # address escapes (gep, cast, call, ...)
    return True


class Mem2Reg(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, fn: Function) -> bool:
        allocas = [
            inst
            for inst in fn.entry.instructions
            if isinstance(inst, Alloca) and _is_promotable(inst)
        ]
        if not allocas:
            return False
        domtree = DominatorTree(fn)
        frontier = domtree.dominance_frontier()
        phi_slots: Dict[Phi, Alloca] = {}
        # Layout order for set-of-blocks iteration: phi names (and with
        # them the whole downstream pipeline) must not depend on Python
        # set ordering, or repeated compiles of the same unit diverge.
        block_order = {b: i for i, b in enumerate(fn.blocks)}

        for alloca in allocas:
            defining_blocks = {
                use.user.parent
                for use in alloca.uses
                if isinstance(use.user, Store) and use.user.parent is not None
            }
            # Iterated dominance frontier.
            phi_blocks: Set[BasicBlock] = set()
            worklist = [b for b in defining_blocks if domtree.is_reachable(b)]
            while worklist:
                block = worklist.pop()
                for df_block in frontier.get(block, ()):
                    if df_block not in phi_blocks:
                        phi_blocks.add(df_block)
                        worklist.append(df_block)
            for block in sorted(phi_blocks, key=block_order.__getitem__):
                phi = Phi(alloca.allocated_type, fn.next_name("m2r"))
                block.insert(0, phi)
                phi_slots[phi] = alloca

        # Renaming walk over the dominator tree.
        current: Dict[Alloca, List[Value]] = {a: [] for a in allocas}
        alloca_set = set(map(id, allocas))
        to_erase: List[Instruction] = []

        def value_for(alloca: Alloca) -> Value:
            stack = current[alloca]
            if stack:
                return stack[-1]
            return UndefValue(alloca.allocated_type)

        def rename(block: BasicBlock) -> None:
            pushed: Dict[Alloca, int] = {}
            for inst in list(block.instructions):
                if isinstance(inst, Phi) and inst in phi_slots:
                    alloca = phi_slots[inst]
                    current[alloca].append(inst)
                    pushed[alloca] = pushed.get(alloca, 0) + 1
                elif isinstance(inst, Load) and id(inst.pointer) in alloca_set:
                    alloca = inst.pointer  # type: ignore[assignment]
                    inst.replace_all_uses_with(value_for(alloca))
                    to_erase.append(inst)
                elif isinstance(inst, Store) and id(inst.pointer) in alloca_set:
                    alloca = inst.pointer  # type: ignore[assignment]
                    current[alloca].append(inst.value)
                    pushed[alloca] = pushed.get(alloca, 0) + 1
                    to_erase.append(inst)
            for succ in block.successors:
                for phi in succ.phis():
                    if phi in phi_slots:
                        phi.add_incoming(value_for(phi_slots[phi]), block)
            for child in domtree.children(block):
                rename(child)
            for alloca, count in pushed.items():
                del current[alloca][-count:]

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + 10 * len(fn.blocks)))
        try:
            rename(fn.entry)
        finally:
            sys.setrecursionlimit(old_limit)

        for inst in to_erase:
            inst.erase_from_parent()
        for alloca in allocas:
            alloca.erase_from_parent()
        # Phis placed in blocks that turned out unreachable from any
        # definition keep undef incoming values; clean trivial ones.
        for phi, alloca in phi_slots.items():
            if phi.parent is None:
                continue
            if phi.num_operands == 0:
                phi.replace_all_uses_with(UndefValue(phi.type))
                phi.erase_from_parent()
        return True

"""The compiler pipeline with the paper's extension points.

Mirrors the clang/LLVM legacy pass-manager setup of the paper's
Figure 8: a fixed optimization pipeline into which the MemInstrument
pass can be plugged at one of three extension points:

* ``ModuleOptimizerEarly``   -- before the main scalar optimizations;
* ``ScalarOptimizerLate``    -- after the main scalar optimizations;
* ``VectorizerStart``        -- just before the (here: absent)
  vectorizer, i.e. after all mid-end optimization.

Whatever is inserted at an extension point is followed by the remaining
pipeline, so early-instrumented code is subsequently optimized --
including GVN's removal of dominated duplicate checks -- while checks
simultaneously *block* LICM and load CSE (see :mod:`repro.opt.licm`).
This reproduces the ~30% early-vs-late gap of Figures 12/13.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..ir.module import Module
from .dce import DCE
from .gvn import GVN
from .inline import Inliner
from .instcombine import InstCombine
from .licm import LICM
from .mem2reg import Mem2Reg
from .pass_manager import Pass, PassManager
from .simplifycfg import SimplifyCFG

EXTENSION_POINTS = (
    "ModuleOptimizerEarly",
    "ScalarOptimizerLate",
    "VectorizerStart",
)


class CallbackPass(Pass):
    """Wraps an arbitrary module callback (the instrumentation hook)."""

    def __init__(self, name: str, callback: Callable[[Module], None]):
        self.name = name
        self.callback = callback

    def run(self, module: Module) -> bool:
        self.callback(module)
        return True


def build_pipeline(
    opt_level: int = 3,
    instrument: Optional[Callable[[Module], None]] = None,
    extension_point: str = "VectorizerStart",
    verify_each: bool = False,
) -> PassManager:
    """Build the standard pipeline, optionally with an instrumentation
    callback plugged in at ``extension_point``."""
    if extension_point not in EXTENSION_POINTS:
        raise ValueError(
            f"unknown extension point {extension_point!r}; "
            f"choose one of {EXTENSION_POINTS}"
        )
    hook = (
        CallbackPass(f"instrument@{extension_point}", instrument)
        if instrument is not None
        else None
    )
    passes: List[Pass] = []

    def at(point: str) -> None:
        if hook is not None and extension_point == point:
            passes.append(hook)

    # Canonicalization (always, -O0 and up).
    passes.append(SimplifyCFG())
    if opt_level >= 1:
        passes.append(Mem2Reg())
    # EP_ModuleOptimizerEarly sits before the inliner and the main
    # scalar optimizations, as in clang's legacy pass manager: code
    # instrumented here still contains every small call (so call
    # invariants are paid for calls that would have been inlined away)
    # and instrumented callees often exceed the inline threshold.
    at("ModuleOptimizerEarly")
    if opt_level >= 1:
        passes.append(Inliner())
        passes.append(InstCombine())
        passes.append(SimplifyCFG())
        passes.append(DCE())
    if opt_level >= 2:
        # Main scalar optimizations.
        passes.append(GVN())
        passes.append(LICM())
        passes.append(InstCombine())
        passes.append(SimplifyCFG())
        passes.append(GVN())
        passes.append(DCE())
    at("ScalarOptimizerLate")
    if opt_level >= 2:
        # Late scalar cleanup round.
        passes.append(LICM())
        passes.append(GVN())
        passes.append(InstCombine())
        passes.append(SimplifyCFG())
        passes.append(DCE())
    at("VectorizerStart")
    # Post-vectorizer cleanup (runs after any instrumentation).
    if opt_level >= 1:
        passes.append(InstCombine())
        passes.append(GVN())
        passes.append(DCE())
        passes.append(SimplifyCFG())
    return PassManager(passes, verify_each=verify_each)


def optimize(module: Module, opt_level: int = 3, verify_each: bool = False) -> Module:
    """Run the standard pipeline (no instrumentation) in place."""
    build_pipeline(opt_level, verify_each=verify_each).run(module)
    return module

"""The mini-compiler's optimizer."""

from .dce import DCE
from .gvn import GVN
from .inline import Inliner
from .instcombine import InstCombine
from .licm import LICM
from .mem2reg import Mem2Reg
from .pass_manager import FunctionPass, Pass, PassManager
from .pipeline import EXTENSION_POINTS, build_pipeline, optimize
from .simplifycfg import SimplifyCFG

__all__ = [
    "DCE", "EXTENSION_POINTS", "FunctionPass", "GVN", "Inliner",
    "InstCombine", "LICM", "Mem2Reg", "Pass", "PassManager", "SimplifyCFG",
    "build_pipeline", "optimize",
]

"""Instruction combining: constant folding and algebraic peepholes.

A worklist-driven local simplifier in the spirit of LLVM's InstCombine,
covering the folds the workloads actually produce: constant arithmetic,
algebraic identities, cast round-trips (including ``ptrtoint`` /
``inttoptr`` pairs -- which is how an optimizer *introduces or removes*
the casts that trouble SoftBound, cf. paper Section 4.4), comparison
folds, and select-on-constant.
"""

from __future__ import annotations

import math
import struct as _struct
from typing import Optional

from ..ir.instructions import (
    BinOp,
    Cast,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Select,
)
from ..ir.types import FloatType, IntType, PointerType
from ..ir.values import ConstantFloat, ConstantInt, ConstantNull, UndefValue, Value
from ..ir.module import Function
from .pass_manager import FunctionPass


def _to_signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def fold_int_binop(op: str, lhs: int, rhs: int, bits: int) -> Optional[int]:
    mask = (1 << bits) - 1
    if op == "add":
        return (lhs + rhs) & mask
    if op == "sub":
        return (lhs - rhs) & mask
    if op == "mul":
        return (lhs * rhs) & mask
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return (lhs << (rhs % bits)) & mask
    if op == "lshr":
        return lhs >> (rhs % bits)
    if op == "ashr":
        return (_to_signed(lhs, bits) >> (rhs % bits)) & mask
    if op in ("sdiv", "srem"):
        a, b = _to_signed(lhs, bits), _to_signed(rhs, bits)
        if b == 0:
            return None
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return (q if op == "sdiv" else a - q * b) & mask
    if op in ("udiv", "urem"):
        if rhs == 0:
            return None
        return (lhs // rhs if op == "udiv" else lhs % rhs) & mask
    return None


def fold_icmp(pred: str, lhs: int, rhs: int, bits: int) -> int:
    if pred in ("slt", "sle", "sgt", "sge"):
        lhs, rhs = _to_signed(lhs, bits), _to_signed(rhs, bits)
    return int({
        "eq": lhs == rhs, "ne": lhs != rhs,
        "slt": lhs < rhs, "sle": lhs <= rhs,
        "sgt": lhs > rhs, "sge": lhs >= rhs,
        "ult": lhs < rhs, "ule": lhs <= rhs,
        "ugt": lhs > rhs, "uge": lhs >= rhs,
    }[pred])


class InstCombine(FunctionPass):
    name = "instcombine"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    replacement = self._simplify(inst)
                    if replacement is not None and replacement is not inst:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        progress = True
                        changed = True
        return changed

    def _simplify(self, inst: Instruction) -> Optional[Value]:
        if isinstance(inst, BinOp):
            return self._simplify_binop(inst)
        if isinstance(inst, ICmp):
            return self._simplify_icmp(inst)
        if isinstance(inst, FCmp):
            return self._simplify_fcmp(inst)
        if isinstance(inst, Cast):
            return self._simplify_cast(inst)
        if isinstance(inst, Select):
            cond = inst.condition
            if isinstance(cond, ConstantInt):
                return inst.true_value if cond.value else inst.false_value
            if inst.true_value is inst.false_value:
                return inst.true_value
            return None
        if isinstance(inst, GEP):
            # gep with all-zero indices is the base pointer (modulo type).
            if inst.type == inst.pointer.type and all(
                isinstance(i, ConstantInt) and i.value == 0 for i in inst.indices
            ):
                return inst.pointer
            return None
        return None

    def _simplify_binop(self, inst: BinOp) -> Optional[Value]:
        lhs, rhs = inst.lhs, inst.rhs
        ty = inst.type
        if isinstance(ty, IntType):
            if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
                folded = fold_int_binop(inst.opcode, lhs.value, rhs.value, ty.bits)
                if folded is not None:
                    return ConstantInt(ty, folded)
                return None
            # Canonicalize constants to the right for commutative ops.
            if isinstance(lhs, ConstantInt) and inst.opcode in (
                "add", "mul", "and", "or", "xor"
            ):
                inst.set_operand(0, rhs)
                inst.set_operand(1, lhs)
                lhs, rhs = inst.lhs, inst.rhs
            if isinstance(rhs, ConstantInt):
                c = rhs.value
                op = inst.opcode
                if c == 0 and op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
                    return lhs
                if c == 0 and op in ("mul", "and"):
                    return ConstantInt(ty, 0)
                if c == 1 and op in ("mul", "sdiv", "udiv"):
                    return lhs
                if c == ty.mask and op == "and":
                    return lhs
            if inst.opcode == "sub" and lhs is rhs:
                return ConstantInt(ty, 0)
            if inst.opcode == "xor" and lhs is rhs:
                return ConstantInt(ty, 0)
            return None
        if isinstance(ty, FloatType):
            if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
                try:
                    value = {
                        "fadd": lhs.value + rhs.value,
                        "fsub": lhs.value - rhs.value,
                        "fmul": lhs.value * rhs.value,
                        "fdiv": lhs.value / rhs.value if rhs.value else math.inf,
                        "frem": math.fmod(lhs.value, rhs.value) if rhs.value else math.nan,
                    }[inst.opcode]
                except (OverflowError, ValueError):
                    return None
                return ConstantFloat(ty, value)
        return None

    def _simplify_icmp(self, inst: ICmp) -> Optional[Value]:
        lhs, rhs = inst.lhs, inst.rhs
        from ..ir.types import I1

        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            bits = lhs.type.bits if isinstance(lhs.type, IntType) else 64
            return ConstantInt(I1, fold_icmp(inst.predicate, lhs.value, rhs.value, bits))
        if lhs is rhs:
            return ConstantInt(I1, int(inst.predicate in ("eq", "sle", "sge", "ule", "uge")))
        if isinstance(lhs, ConstantNull) and isinstance(rhs, ConstantNull):
            return ConstantInt(I1, int(inst.predicate in ("eq", "sle", "sge", "ule", "uge")))
        return None

    def _simplify_fcmp(self, inst: FCmp) -> Optional[Value]:
        lhs, rhs = inst.lhs, inst.rhs
        from ..ir.instructions import FCMP_EVAL
        from ..ir.types import I1

        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            # FCMP_EVAL carries the full 14-predicate table with LLVM's
            # ordered/unordered NaN semantics, so folding agrees with
            # what either execution engine would compute at runtime.
            return ConstantInt(I1, FCMP_EVAL[inst.predicate](lhs.value, rhs.value))
        return None

    def _simplify_cast(self, inst: Cast) -> Optional[Value]:
        value = inst.value
        op = inst.opcode
        src_ty, dst_ty = value.type, inst.type
        if src_ty == dst_ty and op in ("bitcast", "zext", "sext", "trunc",
                                       "fpext", "fptrunc"):
            return value
        if isinstance(value, ConstantInt):
            if op == "trunc" and isinstance(dst_ty, IntType):
                return ConstantInt(dst_ty, value.value)
            if op == "zext" and isinstance(dst_ty, IntType):
                return ConstantInt(dst_ty, value.value)
            if op == "sext" and isinstance(dst_ty, IntType):
                return ConstantInt(dst_ty, value.signed_value)
            if op == "sitofp" and isinstance(dst_ty, FloatType):
                return ConstantFloat(dst_ty, float(value.signed_value))
            if op == "uitofp" and isinstance(dst_ty, FloatType):
                return ConstantFloat(dst_ty, float(value.value))
            if op == "inttoptr" and value.value == 0 and isinstance(dst_ty, PointerType):
                return ConstantNull(dst_ty)
        if isinstance(value, ConstantFloat):
            if op in ("fpext", "fptrunc") and isinstance(dst_ty, FloatType):
                return ConstantFloat(dst_ty, value.value)
            if op == "fptosi" and isinstance(dst_ty, IntType):
                # int(NaN)/int(inf) raise; leave non-finite conversions
                # to the runtime rather than crashing the compiler.
                if math.isfinite(value.value):
                    return ConstantInt(dst_ty, int(value.value))
        if isinstance(value, ConstantNull):
            if op == "bitcast" and isinstance(dst_ty, PointerType):
                return ConstantNull(dst_ty)
            if op == "ptrtoint" and isinstance(dst_ty, IntType):
                return ConstantInt(dst_ty, 0)
        if isinstance(value, UndefValue):
            return UndefValue(dst_ty)
        # Cast-of-cast round trips.
        if isinstance(value, Cast):
            inner = value
            # bitcast(bitcast(x)) -> bitcast(x); collapses chains.
            if op == "bitcast" and inner.opcode == "bitcast":
                if inner.value.type == dst_ty:
                    return inner.value
            # inttoptr(ptrtoint(x)) -> x if types line up: LLVM performs
            # this fold, *removing* casts the programmer wrote.
            if op == "inttoptr" and inner.opcode == "ptrtoint":
                if inner.value.type == dst_ty:
                    return inner.value
            if op == "ptrtoint" and inner.opcode == "inttoptr":
                if inner.value.type == dst_ty:
                    return inner.value
            # trunc(zext(x)) / trunc(sext(x)) -> x when widths match.
            if op == "trunc" and inner.opcode in ("zext", "sext"):
                if inner.value.type == dst_ty:
                    return inner.value
        return None

"""Pass manager for the mini-compiler.

Passes transform IR modules/functions in place and report whether they
changed anything.  The manager can verify the module after each pass
(``verify_each``), which the test suite uses to catch pass bugs early,
and collects per-pass statistics that the experiment harness reads
(e.g. how many checks the dominance filter removed, Section 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.module import Function, Module
from ..ir.verifier import verify_module


class Pass:
    """Base class: a named module transformation."""

    name = "<pass>"

    def run(self, module: Module) -> bool:
        """Transform the module; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """A pass that processes one function at a time."""

    def run(self, module: Module) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if fn.is_declaration or fn.native:
                continue
            changed |= self.run_on_function(fn)
        return changed

    def run_on_function(self, fn: Function) -> bool:
        raise NotImplementedError


class PassManager:
    def __init__(self, passes: Optional[List[Pass]] = None, verify_each: bool = False):
        self.passes: List[Pass] = list(passes) if passes else []
        self.verify_each = verify_each
        self.pass_stats: Dict[str, int] = {}

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        changed = False
        for pass_ in self.passes:
            this_changed = pass_.run(module)
            changed |= this_changed
            self.pass_stats[pass_.name] = self.pass_stats.get(pass_.name, 0) + int(
                this_changed
            )
            if self.verify_each:
                try:
                    verify_module(module)
                except Exception as exc:  # pragma: no cover - debugging aid
                    raise AssertionError(
                        f"module invalid after pass {pass_.name}: {exc}"
                    ) from exc
        return changed

"""Global value numbering with redundant load and check elimination.

A dominator-tree walk with scoped hash tables:

* *pure expressions* (binops, geps, compares, casts, selects and calls
  to ``readnone`` functions) are CSE'd against dominating occurrences;
* *loads* are CSE'd against dominating loads/stores of the same address
  within the same memory generation (any may-write instruction starts a
  new generation);
* calls to ``readonly`` functions (e.g. SoftBound's trie lookups) are
  CSE'd like loads;
* calls to functions marked ``mi_check`` (the instrumentation's
  dereference and invariant checks) with identical arguments are
  *removed* when a dominating identical check exists: the dominating
  check already aborted on failure.  This reproduces the paper's
  observation (Section 5.3) that the compiler can remove dominated
  duplicate checks by itself, making the explicit dominance filter's
  runtime effect minor.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..ir.instructions import (
    BinOp,
    Call,
    Cast,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)
from .pass_manager import FunctionPass


def _value_key(value: Value):
    """A hashable key identifying a value; equal constants get equal keys."""
    if isinstance(value, ConstantInt):
        return ("ci", str(value.type), value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", str(value.type), value.value)
    if isinstance(value, ConstantNull):
        return ("null", str(value.type))
    if isinstance(value, UndefValue):
        return ("undef", id(value))
    return ("v", id(value))


class _ScopedTable:
    """Hash table with scope-based rollback for the dominator-tree walk."""

    def __init__(self) -> None:
        self._table: Dict = {}
        self._scopes: List[List] = []

    def push_scope(self) -> None:
        self._scopes.append([])

    def pop_scope(self) -> None:
        for key, old in reversed(self._scopes.pop()):
            if old is _MISSING:
                del self._table[key]
            else:
                self._table[key] = old

    def get(self, key):
        return self._table.get(key)

    def set(self, key, value) -> None:
        old = self._table.get(key, _MISSING)
        self._scopes[-1].append((key, old))
        self._table[key] = value


class _Missing:
    pass


_MISSING = _Missing()


class GVN(FunctionPass):
    name = "gvn"

    def run_on_function(self, fn: Function) -> bool:
        domtree = DominatorTree(fn)
        pure = _ScopedTable()
        memory = _ScopedTable()
        self._changed = False
        self._memgen = 0

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + 10 * len(fn.blocks)))
        try:
            self._walk(fn.entry, domtree, pure, memory)
        finally:
            sys.setrecursionlimit(old_limit)
        return self._changed

    # -- keys -----------------------------------------------------------
    def _expr_key(self, inst: Instruction):
        if isinstance(inst, BinOp):
            ops = [_value_key(inst.lhs), _value_key(inst.rhs)]
            if inst.opcode in ("add", "mul", "and", "or", "xor"):
                ops.sort()
            return ("bin", inst.opcode, str(inst.type), tuple(ops))
        if isinstance(inst, ICmp):
            return ("icmp", inst.predicate, _value_key(inst.lhs), _value_key(inst.rhs))
        if isinstance(inst, FCmp):
            return ("fcmp", inst.predicate, _value_key(inst.lhs), _value_key(inst.rhs))
        if isinstance(inst, Cast):
            return ("cast", inst.opcode, str(inst.type), _value_key(inst.value))
        if isinstance(inst, GEP):
            return (
                "gep",
                str(inst.type),
                _value_key(inst.pointer),
                tuple(_value_key(i) for i in inst.indices),
            )
        if isinstance(inst, Select):
            return (
                "select",
                _value_key(inst.condition),
                _value_key(inst.true_value),
                _value_key(inst.false_value),
            )
        if isinstance(inst, Call):
            fn = inst.callee_function
            if fn is not None and "readnone" in fn.attributes:
                return ("rncall", fn.name, tuple(_value_key(a) for a in inst.args))
        return None

    # -- walk ---------------------------------------------------------------
    def _walk(self, block: BasicBlock, domtree: DominatorTree,
              pure: _ScopedTable, memory: _ScopedTable) -> None:
        pure.push_scope()
        memory.push_scope()
        for inst in list(block.instructions):
            if inst.parent is None:
                continue
            self._process(inst, pure, memory)
        for child in domtree.children(block):
            # Memory facts may only flow along straight-line dominance:
            # if the child has any predecessor besides this block, some
            # path into it (join or loop back edge) may contain clobbers
            # that the dominator-tree walk does not see.  Start a fresh
            # memory generation in that case.
            preds = child.predecessors
            if not (len(preds) == 1 and preds[0] is block):
                self._memgen += 1
            self._walk(child, domtree, pure, memory)
        memory.pop_scope()
        pure.pop_scope()

    def _process(self, inst: Instruction, pure: _ScopedTable, memory: _ScopedTable) -> None:
        if isinstance(inst, Load):
            key = ("mem", _value_key(inst.pointer), self._memgen)
            existing = memory.get(key)
            if existing is not None and existing.type == inst.type:
                inst.replace_all_uses_with(existing)
                inst.erase_from_parent()
                self._changed = True
                return
            memory.set(key, inst)
            return
        if isinstance(inst, Store):
            self._memgen += 1
            # Store-to-load forwarding within the new generation.
            key = ("mem", _value_key(inst.pointer), self._memgen)
            memory.set(key, inst.value)
            return
        if isinstance(inst, Call):
            callee = inst.callee_function
            if callee is not None and "mi_check" in callee.attributes:
                # The compiler removes dominated duplicate checks on its
                # own, but only within a basic block (branch dedup
                # across blocks would need jump threading).  This is
                # what leaves the explicit dominance filter of
                # Section 5.3 a *small* residual win.
                key = ("check", callee.name, tuple(_value_key(a) for a in inst.args))
                existing = pure.get(key)
                if existing is not None and existing.parent is inst.parent:
                    inst.erase_from_parent()
                    self._changed = True
                    return
                pure.set(key, inst)
                # Surviving checks are opaque external calls: memory
                # facts must not flow across them.
                self._memgen += 1
                return
            if callee is not None and "readnone" in callee.attributes:
                key = self._expr_key(inst)
                existing = pure.get(key)
                if existing is not None:
                    inst.replace_all_uses_with(existing)
                    inst.erase_from_parent()
                    self._changed = True
                    return
                pure.set(key, inst)
                return
            if callee is not None and "readonly" in callee.attributes:
                key = (
                    "rocall",
                    callee.name,
                    tuple(_value_key(a) for a in inst.args),
                    self._memgen,
                )
                existing = memory.get(key)
                if existing is not None:
                    inst.replace_all_uses_with(existing)
                    inst.erase_from_parent()
                    self._changed = True
                    return
                memory.set(key, inst)
                return
            # Unknown call: clobbers memory.
            self._memgen += 1
            return
        key = self._expr_key(inst)
        if key is None:
            return
        existing = pure.get(key)
        if existing is not None and existing.type == inst.type:
            inst.replace_all_uses_with(existing)
            inst.erase_from_parent()
            self._changed = True
            return
        pure.set(key, inst)

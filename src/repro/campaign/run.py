"""Sharded campaign execution over the experiment engine.

A campaign expands to an N x M cell list (deterministic, order-
independent); execution then:

* **shards** the cells by content hash -- each cell's shard is decided
  by the engine's :meth:`~repro.experiments.runner.ExperimentEngine.
  fingerprint` (workload sources + config + engine), so any number of
  worker machines running ``--shard-index i --shard-count n`` partition
  the campaign exactly, with no coordination and no double work;
* **batches** the shard through :meth:`ExperimentEngine.run_many`, so
  worker processes stay busy across cell boundaries and baselines are
  scheduled before the instrumented cells that validate against them;
* **resumes** from the content-addressed disk cache: with an
  engine-keyed cache every cell (including ``interp`` ones) persists,
  so a re-run of an interrupted campaign recomputes only the missing
  cells, bit-identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..experiments.common import BenchResult, geomean
from ..experiments.runner import ExperimentEngine
from .model import CampaignCell, CampaignSpec


def shard_of(fingerprint: str, shard_count: int) -> int:
    """Stable shard assignment: cells follow their content, not their
    position, so adding or reordering cells never reshuffles the rest."""
    digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
    return int(digest[:16], 16) % shard_count


@dataclass
class CellResult:
    """One executed campaign cell."""

    instance: str
    target: str
    label: str
    engine: str
    result: BenchResult

    def to_json(self) -> dict:
        return {
            "instance": self.instance,
            "target": self.target,
            "label": self.label,
            "engine": self.engine,
            "result": self.result.to_json(),
        }


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign shard."""

    spec_name: str
    shard_index: int
    shard_count: int
    cells: List[CellResult] = field(default_factory=list)
    executed_jobs: int = 0
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return all(c.result.ok for c in self.cells)

    def failures(self) -> List[CellResult]:
        return [c for c in self.cells if not c.result.ok]

    def overheads(self) -> Dict[str, float]:
        """Geomean cycle overhead per instance, against the same-engine
        baseline instance (only targets present under both)."""
        baselines: Dict[tuple, int] = {}
        for cell in self.cells:
            if cell.label == "baseline" and cell.result.ok:
                baselines[(cell.engine, cell.target)] = cell.result.cycles
        per_instance: Dict[str, List[float]] = {}
        for cell in self.cells:
            if cell.label == "baseline" or not cell.result.ok:
                continue
            base = baselines.get((cell.engine, cell.target))
            if base:
                per_instance.setdefault(cell.instance, []).append(
                    cell.result.cycles / base)
        return {instance: geomean(ratios)
                for instance, ratios in sorted(per_instance.items())}

    def summary_cells(self) -> Dict[str, dict]:
        """The compact per-cell record the regression history stores."""
        return {
            f"{c.instance}|{c.target}": {
                "cycles": c.result.cycles,
                "checks": c.result.checks_executed,
                "status": c.result.status,
            }
            for c in self.cells
        }

    def to_json(self) -> dict:
        return {
            "campaign": self.spec_name,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "ok": self.ok,
            "executed_jobs": self.executed_jobs,
            "cache_hits": self.cache_hits,
            "overheads": self.overheads(),
            "cells": [c.to_json() for c in self.cells],
        }

    def summary(self) -> str:
        lines = [
            f"campaign {self.spec_name}: {len(self.cells)} cells "
            f"(shard {self.shard_index + 1}/{self.shard_count}), "
            f"{self.executed_jobs} executed, "
            f"{self.cache_hits} served from cache",
        ]
        overheads = self.overheads()
        if overheads:
            lines.append("geomean overhead vs baseline:")
            lines.extend(f"  {instance:32} {ratio:6.2f}x"
                         for instance, ratio in overheads.items())
        failures = self.failures()
        if failures:
            lines.append(f"{len(failures)} cell(s) NOT ok:")
            lines.extend(f"  {c.instance}|{c.target}: {c.result.describe}"
                         for c in failures)
        else:
            lines.append("all cells ok")
        return "\n".join(lines)


class CampaignRunner:
    """Expands a spec, selects this shard, and runs it in batches."""

    def __init__(
        self,
        spec: CampaignSpec,
        engine: ExperimentEngine,
        shard_index: int = 0,
        shard_count: int = 1,
    ):
        if shard_count < 1:
            raise ConfigError("--shard-count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise ConfigError(
                f"--shard-index must be in [0, {shard_count})")
        self.spec = spec
        self.engine = engine
        self.shard_index = shard_index
        self.shard_count = shard_count

    # ------------------------------------------------------------------
    def cells(self) -> List[CampaignCell]:
        return self.spec.expand()

    def shard_cells(self) -> List[CampaignCell]:
        """This shard's slice of the expanded campaign."""
        if self.shard_count == 1:
            return self.cells()
        selected = []
        for cell in self.cells():
            request = cell.instance.request(
                cell.target, max_instructions=self.spec.max_instructions,
                validate_output=self.spec.validate_output)
            fingerprint = self.engine.fingerprint(request)
            if shard_of(fingerprint, self.shard_count) == self.shard_index:
                selected.append(cell)
        return selected

    def run(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        batch: int = 32,
    ) -> CampaignResult:
        """Execute this shard; ``batch`` cells share one scheduler wave."""
        cells = self.shard_cells()
        result = CampaignResult(
            spec_name=self.spec.name,
            shard_index=self.shard_index,
            shard_count=self.shard_count,
        )
        batch = max(1, batch)
        for start in range(0, len(cells), batch):
            group = cells[start:start + batch]
            requests = [
                cell.instance.request(
                    cell.target,
                    max_instructions=self.spec.max_instructions,
                    validate_output=self.spec.validate_output)
                for cell in group
            ]
            outcomes = self.engine.run_many(requests)
            for cell, outcome in zip(group, outcomes):
                result.cells.append(CellResult(
                    instance=cell.instance.name,
                    target=cell.target.name,
                    label=cell.instance.label,
                    engine=cell.instance.engine,
                    result=outcome,
                ))
            if progress is not None:
                progress(min(start + batch, len(cells)), len(cells))
        result.executed_jobs = self.engine.executed_jobs
        result.cache_hits = self.engine.cache_hits
        return result


def run_campaign(
    spec: CampaignSpec,
    engine: ExperimentEngine,
    shard_index: int = 0,
    shard_count: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CampaignResult:
    """Convenience one-shot: expand, shard, and run."""
    return CampaignRunner(spec, engine, shard_index, shard_count).run(
        progress=progress)

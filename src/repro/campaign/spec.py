"""Campaign spec files: TOML or JSON -> :class:`CampaignSpec`.

A spec declares instances either explicitly or as an axis product,
and targets as bundled workload names or inline sources::

    name = "full-report"

    [axes]                      # instances = product of the axes
    mechanisms = ["baseline", "softbound", "lowfat"]
    filters    = ["unopt", "dominance", "ranges"]
    engines    = ["compiled", "interp", "codegen"]

    [[instance]]                # ...plus explicit extras (optional)
    label = "softbound-meta"

    [targets]
    workloads = "all"           # or ["164gzip", "429mcf", ...]

    [[target]]                  # inline-source targets (optional)
    name = "smoke"
    source = "int main() { print_i64(42); return 0; }"

The same schema parses from JSON (``.json``); the axes/instance/target
keys are identical.  Everything is validated up front with
:class:`~repro.errors.ConfigError` -- a typo in a mechanism, filter,
engine, or workload name fails before anything runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Union

from ..errors import ConfigError
from .model import CampaignSpec, Instance, Target, axes_instances

try:  # Python 3.11+; the spec loader degrades to JSON-only without it.
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None


def _as_list(value, what: str) -> List[str]:
    if isinstance(value, str):
        return [value]
    if isinstance(value, Sequence):
        return [str(v) for v in value]
    raise ConfigError(f"{what} must be a string or a list of strings")


def _parse_targets(doc: Mapping[str, object]) -> List[Target]:
    targets: List[Target] = []
    table = doc.get("targets")
    if table is not None:
        if not isinstance(table, Mapping):
            raise ConfigError("[targets] must be a table/object")
        workloads = table.get("workloads")
        if workloads == "all":
            from ..workloads import all_names

            targets.extend(Target(name) for name in all_names())
        elif workloads is not None:
            targets.extend(Target(name)
                           for name in _as_list(workloads,
                                                "targets.workloads"))
        unknown = set(table) - {"workloads"}
        if unknown:
            raise ConfigError(
                f"unknown [targets] key(s): {', '.join(sorted(unknown))}")
    for entry in doc.get("target", ()):
        if not isinstance(entry, Mapping):
            raise ConfigError("[[target]] entries must be tables/objects")
        entry = dict(entry)
        try:
            name = str(entry.pop("name"))
        except KeyError:
            raise ConfigError("[[target]] needs a 'name'") from None
        source = entry.pop("source", None)
        sources = entry.pop("sources", None)
        if entry:
            raise ConfigError(
                f"unknown [[target]] key(s): {', '.join(sorted(entry))}")
        if (source is None) == (sources is None):
            raise ConfigError(
                f"target {name!r} needs exactly one of 'source' "
                f"(a single unit) or 'sources' (a unit table)")
        if source is not None:
            sources = {"main.c": str(source)}
        if not isinstance(sources, Mapping):
            raise ConfigError(f"target {name!r} 'sources' must be a table")
        targets.append(Target(name, sources={str(k): str(v)
                                             for k, v in sources.items()}))
    return targets


def _parse_instances(doc: Mapping[str, object]) -> List[Instance]:
    instances: List[Instance] = []
    axes = doc.get("axes")
    if axes is not None:
        if not isinstance(axes, Mapping):
            raise ConfigError("[axes] must be a table/object")
        axes = dict(axes)
        kwargs = {}
        for spec_key, kw in (("mechanisms", "mechanisms"),
                             ("filters", "filters"),
                             ("engines", "engines"),
                             ("modes", "modes"),
                             ("extension_points", "extension_points")):
            if spec_key in axes:
                kwargs[kw] = _as_list(axes.pop(spec_key),
                                      f"axes.{spec_key}")
        if axes:
            raise ConfigError(
                f"unknown [axes] key(s): {', '.join(sorted(axes))}")
        if "mechanisms" not in kwargs:
            raise ConfigError("[axes] needs at least 'mechanisms'")
        instances.extend(axes_instances(**kwargs))
    for entry in doc.get("instance", ()):
        if not isinstance(entry, Mapping):
            raise ConfigError("[[instance]] entries must be tables/objects")
        instances.append(Instance.parse(entry))
    # dedupe across axes + explicit entries, keeping first occurrence
    seen = set()
    unique = []
    for instance in instances:
        if instance.name not in seen:
            seen.add(instance.name)
            unique.append(instance)
    return unique


def parse_spec(doc: Mapping[str, object],
               name: Optional[str] = None) -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from a parsed document."""
    if not isinstance(doc, Mapping):
        raise ConfigError("campaign spec must be a table/object")
    doc = dict(doc)
    spec_name = str(doc.pop("name", name or "campaign"))
    max_instructions = doc.pop("max_instructions", None)
    if max_instructions is not None:
        max_instructions = int(max_instructions)
    validate_output = bool(doc.pop("validate_output", True))
    instances = _parse_instances(doc)
    targets = _parse_targets(doc)
    doc.pop("axes", None), doc.pop("instance", None)
    doc.pop("targets", None), doc.pop("target", None)
    if doc:
        raise ConfigError(
            f"unknown campaign spec key(s): {', '.join(sorted(doc))}")
    if not instances:
        raise ConfigError("campaign spec declares no instances "
                          "(add [axes] or [[instance]] entries)")
    if not targets:
        raise ConfigError("campaign spec declares no targets "
                          "(add [targets] or [[target]] entries)")
    return CampaignSpec(name=spec_name, instances=instances,
                        targets=targets, max_instructions=max_instructions,
                        validate_output=validate_output)


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigError(f"cannot read campaign spec: {exc}") from None
    if path.suffix.lower() == ".toml":
        if tomllib is None:  # pragma: no cover
            raise ConfigError(
                "TOML campaign specs need Python 3.11+ (tomllib); "
                "use a .json spec instead")
        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ConfigError(f"invalid TOML in {path}: {exc}") from None
    elif path.suffix.lower() == ".json":
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"invalid JSON in {path}: {exc}") from None
    else:
        raise ConfigError(
            f"campaign spec {path} must be a .toml or .json file")
    return parse_spec(doc, name=path.stem)

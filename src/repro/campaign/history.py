"""Cross-run regression tracking for campaigns.

Every completed campaign (shard) can append a compact summary entry to
a ``BENCH_*.json`` time-series file.  The VM is fully deterministic, so
for an unchanged (sources, config, engine) cell the cycle count must be
*exactly* reproducible -- any drift between consecutive entries is a
real behaviour change, and an *increase* past the tolerance is flagged
as a regression.  Geomean overhead per instance is tracked the same
way, which is the campaign-scale version of the CI perf gate.

The file is a single JSON document::

    {"campaign": "nightly", "entries": [ {…}, {…}, … ]}

Entries carry a monotonically increasing ``sequence`` (not a wall-clock
time) so the series is reproducible and diffable.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigError
from .run import CampaignResult

#: Cycle counts are deterministic; any increase is suspect.  Overheads
#: divide two cycle counts, so give them a small relative tolerance to
#: absorb an improved baseline.
CYCLE_TOLERANCE = 0.0
OVERHEAD_TOLERANCE = 0.02


@dataclass
class Regression:
    """One flagged degradation between consecutive history entries."""

    kind: str       # "cycles" | "overhead" | "status"
    subject: str    # "instance|target" cell id or instance name
    before: object
    after: object

    def describe(self) -> str:
        return (f"{self.kind} regression: {self.subject}: "
                f"{self.before!r} -> {self.after!r}")


def load_history(path: Union[str, Path]) -> dict:
    path = Path(path)
    if not path.exists():
        return {"campaign": None, "entries": []}
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable campaign history {path}: {exc}")
    if not isinstance(document, dict) or \
            not isinstance(document.get("entries"), list):
        raise ConfigError(f"malformed campaign history {path}")
    return document


def _entry_from(result: CampaignResult) -> dict:
    return {
        "campaign": result.spec_name,
        "shard_index": result.shard_index,
        "shard_count": result.shard_count,
        "executed_jobs": result.executed_jobs,
        "cache_hits": result.cache_hits,
        "cells": result.summary_cells(),
        "overheads": result.overheads(),
    }


def append_entry(path: Union[str, Path], result: CampaignResult) -> dict:
    """Append ``result``'s summary to the series at ``path`` (atomic
    write); returns the appended entry."""
    path = Path(path)
    document = load_history(path)
    if document["campaign"] is None:
        document["campaign"] = result.spec_name
    entry = _entry_from(result)
    entry["sequence"] = len(document["entries"])
    document["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return entry


def compare_entries(
    previous: dict,
    latest: dict,
    cycle_tolerance: float = CYCLE_TOLERANCE,
    overhead_tolerance: float = OVERHEAD_TOLERANCE,
) -> List[Regression]:
    """Regressions from ``previous`` to ``latest``.

    Only cells/instances present in both entries are compared, so a
    changed spec (new workloads, new instances) never produces spurious
    flags."""
    regressions: List[Regression] = []
    previous_cells: Dict[str, dict] = previous.get("cells", {})
    for cell_id, cell in latest.get("cells", {}).items():
        before = previous_cells.get(cell_id)
        if before is None:
            continue
        if before["status"] == "exit" and cell["status"] != "exit":
            regressions.append(Regression(
                "status", cell_id, before["status"], cell["status"]))
            continue
        if cell["cycles"] > before["cycles"] * (1.0 + cycle_tolerance):
            regressions.append(Regression(
                "cycles", cell_id, before["cycles"], cell["cycles"]))
    previous_overheads: Dict[str, float] = previous.get("overheads", {})
    for instance, overhead in latest.get("overheads", {}).items():
        before = previous_overheads.get(instance)
        if before is not None and \
                overhead > before * (1.0 + overhead_tolerance):
            regressions.append(Regression(
                "overhead", instance, round(before, 4), round(overhead, 4)))
    return regressions


def find_regressions(
    history: Union[str, Path, dict],
    cycle_tolerance: float = CYCLE_TOLERANCE,
    overhead_tolerance: float = OVERHEAD_TOLERANCE,
) -> List[Regression]:
    """Compare the two most recent entries of a series (by shard, so
    multi-shard campaigns compare each shard against its predecessor)."""
    if not isinstance(history, dict):
        history = load_history(history)
    entries = history["entries"]
    if len(entries) < 2:
        return []
    latest = entries[-1]
    shard = (latest.get("shard_index", 0), latest.get("shard_count", 1))
    for entry in reversed(entries[:-1]):
        if (entry.get("shard_index", 0),
                entry.get("shard_count", 1)) == shard:
            return compare_entries(entry, latest,
                                   cycle_tolerance, overhead_tolerance)
    return []

"""The declarative instance/target model of the campaign layer.

Modelled on instrumentation-infra's ``instance.py`` / ``target.py``
split: an :class:`Instance` is one *way of building and running* code
(mechanism x check-filter set x mode x VM engine x pipeline extension
point), a :class:`Target` is one *thing to run* (a bundled workload or
an inline MiniC source set), and a :class:`CampaignSpec` is the N x M
product of the two plus execution options.

Instances resolve their mechanism through the registry in
:mod:`repro.core.mechanism`, so a newly registered mechanism is
immediately campaign-able by name -- no campaign-layer edits.  Canonical
instances produce exactly the experiment harness's ``CONFIG_LABELS``
labels and configurations, so campaign cells share cache entries and
stay comparable with every table/figure experiment.

Expansion (:meth:`CampaignSpec.expand`) is deterministic and
order-independent: duplicate cells collapse, and the result is sorted
by (instance, target) name -- two processes expanding the same spec
always agree on the cell list, which is what makes sharding by content
hash coordination-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.config import InstrumentationConfig, MODES
from ..core.mechanism import get_mechanism, mechanism_names
from ..errors import ConfigError
from ..experiments.runner import JobRequest
from ..vm.engines import ENGINES
from ..workloads import Workload

#: Check-filter selections an instance may request.  ``ranges`` is
#: composed after ``dominance`` and ``hoist`` after both throughout
#: the repo, but the model does not force the pairing -- each filter is
#: an independent axis value.
KNOWN_FILTERS = ("dominance", "ranges", "hoist")

#: Named filter-axis shorthands used by spec files (and by the
#: experiment harness's label scheme).
FILTER_SETS: Dict[str, Tuple[str, ...]] = {
    "unopt": (),
    "dominance": ("dominance",),
    "ranges": ("dominance", "ranges"),
    "hoist": ("dominance", "ranges", "hoist"),
}

def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown VM engine {engine!r} (expected one of "
            f"{', '.join(ENGINES)})")
    return engine


@dataclass(frozen=True)
class Instance:
    """One way of building and running a target.

    ``mechanism`` is a registry name (``softbound``, ``lowfat``, ...)
    or ``baseline``/``noop`` for the uninstrumented reference.
    ``filters`` selects check-elimination filters, ``mode`` is the
    instrumentation mode (``full`` or ``geninvariants``), ``engine``
    the VM execution tier, and ``extension_point`` where the
    instrumentation runs in the pipeline.  ``config_overrides`` are
    extra :class:`InstrumentationConfig` fields (the ablation knobs).
    """

    mechanism: str
    filters: Tuple[str, ...] = ()
    mode: str = "full"
    engine: str = "compiled"
    extension_point: str = "VectorizerStart"
    config_overrides: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        # Normalize: frozen dataclass, so go through object.__setattr__.
        filters = tuple(dict.fromkeys(self.filters))
        unknown = [f for f in filters if f not in KNOWN_FILTERS]
        if unknown:
            raise ConfigError(
                f"unknown check filter(s) {', '.join(unknown)} "
                f"(known: {', '.join(KNOWN_FILTERS)})")
        if self.mode not in MODES:
            raise ConfigError(f"unknown instrumentation mode {self.mode!r}")
        _check_engine(self.engine)
        if not self.is_baseline:
            get_mechanism(self.mechanism)  # raises ConfigError if unknown
        object.__setattr__(self, "filters", filters)
        object.__setattr__(self, "config_overrides",
                           dict(self.config_overrides))

    # -- identity ------------------------------------------------------
    @property
    def is_baseline(self) -> bool:
        return self.mechanism in ("baseline", "noop")

    @property
    def label(self) -> str:
        """The experiment harness's canonical configuration label.

        Matches ``experiments.common.CONFIG_LABELS`` exactly for the
        canonical cells, so campaign results share cache entries and
        axes with the table/figure experiments; non-canonical
        combinations get an unambiguous derived label."""
        if self.is_baseline:
            return "baseline"
        parts = [self.mechanism]
        if self.mode == "geninvariants":
            parts.append("meta")
            if self.filters:
                parts.extend(self.filters)
        elif self.filters == ():
            parts.append("unopt")
        elif self.filters == ("dominance",):
            pass
        elif self.filters == ("dominance", "ranges"):
            parts.append("ranges")
        elif self.filters == ("dominance", "ranges", "hoist"):
            parts.append("hoist")
        else:
            parts.extend(self.filters)
        if self.config_overrides:
            parts.extend(f"{k}={v}" for k, v in
                         sorted(self.config_overrides.items()))
        return "-".join(parts)

    @property
    def name(self) -> str:
        """Unique instance name: label plus the execution axes."""
        name = f"{self.label}@{self.engine}"
        if self.extension_point != "VectorizerStart":
            name += f"@{self.extension_point}"
        return name

    # -- resolution ----------------------------------------------------
    def config(self) -> Optional[InstrumentationConfig]:
        """The resolved configuration (None for the baseline)."""
        if self.is_baseline:
            return None
        base = InstrumentationConfig(
            approach=self.mechanism,
            mode=self.mode,
            opt_dominance="dominance" in self.filters,
            opt_ranges="ranges" in self.filters,
            opt_hoist="hoist" in self.filters,
        )
        if self.config_overrides:
            base = replace(base, **self.config_overrides)
        return base

    def request(self, target: "Target",
                max_instructions: Optional[int] = None,
                validate_output: bool = True) -> JobRequest:
        """The :class:`JobRequest` for (this instance, ``target``)."""
        return JobRequest(
            workload=target.workload(),
            label=self.label,
            extension_point=self.extension_point,
            config_override=self.config(),
            max_instructions=max_instructions,
            validate_output=validate_output and not self.is_baseline,
            engine=self.engine,
        )

    # -- construction helpers ------------------------------------------
    @classmethod
    def from_label(cls, label: str, engine: str = "compiled",
                   extension_point: str = "VectorizerStart") -> "Instance":
        """Parse a ``CONFIG_LABELS``-style label into an instance."""
        if label == "baseline":
            return cls("baseline", engine=engine,
                       extension_point=extension_point)
        mechanism, _, variant = label.partition("-")
        if variant == "":
            filters, mode = FILTER_SETS["dominance"], "full"
        elif variant == "unopt":
            filters, mode = FILTER_SETS["unopt"], "full"
        elif variant == "ranges":
            filters, mode = FILTER_SETS["ranges"], "full"
        elif variant == "hoist":
            filters, mode = FILTER_SETS["hoist"], "full"
        elif variant == "meta":
            filters, mode = FILTER_SETS["unopt"], "geninvariants"
        else:
            raise ConfigError(f"unknown configuration label {label!r}")
        return cls(mechanism, filters=filters, mode=mode, engine=engine,
                   extension_point=extension_point)

    @classmethod
    def parse(cls, doc: Mapping[str, object]) -> "Instance":
        """Build an instance from a spec/serve JSON object.

        Accepts either ``{"label": "softbound-ranges", ...}`` or the
        explicit ``{"mechanism": ..., "filters": ..., "mode": ...}``
        form; unknown keys are rejected so typos fail loudly."""
        doc = dict(doc)
        engine = _check_engine(str(doc.pop("engine", "compiled")))
        extension_point = str(doc.pop("extension_point", "VectorizerStart"))
        if "label" in doc:
            label = str(doc.pop("label"))
            if doc:
                raise ConfigError(
                    f"instance with 'label' cannot also set "
                    f"{', '.join(sorted(doc))}")
            return cls.from_label(label, engine=engine,
                                  extension_point=extension_point)
        try:
            mechanism = str(doc.pop("mechanism"))
        except KeyError:
            raise ConfigError(
                "instance needs a 'mechanism' (or a 'label')") from None
        filters = doc.pop("filters", ())
        if isinstance(filters, str):
            filters = FILTER_SETS.get(filters, (filters,))
        mode = str(doc.pop("mode", "full"))
        overrides = doc.pop("config", {})
        if doc:
            raise ConfigError(
                f"unknown instance key(s): {', '.join(sorted(doc))}")
        if not isinstance(overrides, Mapping):
            raise ConfigError("instance 'config' must be a table/object")
        return cls(mechanism, filters=tuple(filters), mode=mode,
                   engine=engine, extension_point=extension_point,
                   config_overrides=dict(overrides))


@dataclass(frozen=True)
class Target:
    """One thing to run: a bundled workload or inline MiniC sources."""

    name: str
    #: None -> ``name`` is a bundled workload; otherwise the MiniC
    #: translation units to compile.
    sources: Optional[Mapping[str, str]] = None

    def __post_init__(self):
        if self.sources is not None:
            object.__setattr__(self, "sources", dict(self.sources))
            if not self.sources:
                raise ConfigError(f"target {self.name!r} has no sources")

    def workload(self) -> Workload:
        if self.sources is not None:
            return Workload(name=self.name, sources=dict(self.sources),
                            description="campaign source target")
        from ..workloads import all_names, get

        if self.name not in all_names():
            raise ConfigError(
                f"unknown workload {self.name!r}; choose from "
                f"{', '.join(all_names())}")
        return get(self.name)


@dataclass(frozen=True)
class CampaignCell:
    """One (instance, target) cell of an expanded campaign."""

    instance: Instance
    target: Target

    @property
    def id(self) -> str:
        return f"{self.instance.name}|{self.target.name}"


@dataclass
class CampaignSpec:
    """A declarative N x M campaign: instances x targets + options."""

    name: str
    instances: Sequence[Instance]
    targets: Sequence[Target]
    max_instructions: Optional[int] = None
    validate_output: bool = True

    def __post_init__(self):
        if not self.instances:
            raise ConfigError(f"campaign {self.name!r} has no instances")
        if not self.targets:
            raise ConfigError(f"campaign {self.name!r} has no targets")

    def expand(self) -> List[CampaignCell]:
        """The deduplicated, deterministically ordered cell list.

        Independent of the declaration order of instances and targets:
        cells sort by (instance name, target name) and duplicates
        (e.g. a baseline instance reached through several filter-axis
        values) collapse to one cell."""
        cells: Dict[str, CampaignCell] = {}
        for instance in self.instances:
            for target in self.targets:
                cell = CampaignCell(instance, target)
                cells.setdefault(cell.id, cell)
        return [cells[key] for key in sorted(cells)]


def standard_instances(
    labels: Iterable[str],
    engines: Iterable[str] = ("compiled",),
) -> List[Instance]:
    """Canonical instances for a labels x engines product (the shape
    both the fuzz oracle's matrices and the bundled campaign specs
    use)."""
    return [Instance.from_label(label, engine=engine)
            for engine in engines for label in labels]


def axes_instances(
    mechanisms: Iterable[str],
    filters: Iterable[str] = ("dominance",),
    engines: Iterable[str] = ("compiled",),
    modes: Iterable[str] = ("full",),
    extension_points: Iterable[str] = ("VectorizerStart",),
) -> List[Instance]:
    """Expand a mechanisms x filters x engines (x modes x extension
    points) axis product into instances.

    The baseline collapses across the filter/mode axes (an
    uninstrumented run has no checks to filter), so a product over
    ``{baseline, softbound, lowfat}`` yields one baseline per engine,
    not one per filter value.  Duplicates are removed; order follows
    the axes."""
    instances: List[Instance] = []
    seen = set()
    for engine in engines:
        for extension_point in extension_points:
            for mechanism in mechanisms:
                for mode in modes:
                    for filter_name in filters:
                        try:
                            filter_set = FILTER_SETS[filter_name]
                        except KeyError:
                            raise ConfigError(
                                f"unknown filter-axis value "
                                f"{filter_name!r} (known: "
                                f"{', '.join(FILTER_SETS)})") from None
                        if mechanism in ("baseline", "noop"):
                            instance = Instance(
                                "baseline", engine=engine,
                                extension_point=extension_point)
                        else:
                            instance = Instance(
                                mechanism, filters=filter_set, mode=mode,
                                engine=engine,
                                extension_point=extension_point)
                        if instance.name not in seen:
                            seen.add(instance.name)
                            instances.append(instance)
    return instances


def all_mechanism_names() -> Tuple[str, ...]:
    """Registry passthrough (so campaign users need one import)."""
    return mechanism_names()

"""Campaign orchestration: declarative instance/target sweeps.

The public API of the campaign layer:

* :class:`Instance` / :class:`Target` / :class:`CampaignSpec` -- the
  declarative model (mechanism x filters x mode x engine, times
  workloads or inline MiniC sources).
* :func:`load_spec` / :func:`parse_spec` -- TOML/JSON spec files.
* :class:`CampaignRunner` / :func:`run_campaign` -- sharded, cached,
  resumable execution over the experiment engine.
* :mod:`.history` -- cross-run ``BENCH_*.json`` time series and
  regression flagging.
* :mod:`.serve` -- the long-lived HTTP/JSON daemon.
"""

from .history import (
    CYCLE_TOLERANCE,
    OVERHEAD_TOLERANCE,
    Regression,
    append_entry,
    compare_entries,
    find_regressions,
    load_history,
)
from .model import (
    FILTER_SETS,
    KNOWN_FILTERS,
    CampaignCell,
    CampaignSpec,
    Instance,
    Target,
    axes_instances,
    standard_instances,
)
from .run import (
    CampaignResult,
    CampaignRunner,
    CellResult,
    run_campaign,
    shard_of,
)
from .serve import CampaignService, make_server
from .spec import load_spec, parse_spec

__all__ = [
    "CYCLE_TOLERANCE",
    "OVERHEAD_TOLERANCE",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CampaignService",
    "CampaignSpec",
    "CellResult",
    "FILTER_SETS",
    "Instance",
    "KNOWN_FILTERS",
    "Regression",
    "Target",
    "append_entry",
    "axes_instances",
    "compare_entries",
    "find_regressions",
    "load_history",
    "load_spec",
    "make_server",
    "parse_spec",
    "run_campaign",
    "shard_of",
    "standard_instances",
]

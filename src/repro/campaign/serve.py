"""Instrument-as-a-service: a long-lived HTTP/JSON daemon.

``python -m repro serve`` turns the reproduction into a small service
backed by one shared :class:`ExperimentEngine` (worker pool + engine-
keyed content-addressed cache): submit MiniC source or a named workload
plus an instance spec, get back the full ``BenchResult`` statistics --
identical to what ``repro run``/``repro bench`` compute, and served
from cache when any previous job (or campaign) already computed the
cell.

Endpoints (all JSON):

``GET /health``
    liveness + engine counters (executed jobs, cache hits).
``GET /instances``
    registered mechanisms and the canonical instance labels.
``GET /workloads``
    bundled workload names.
``POST /run``
    body ``{"workload": "164gzip"}`` or
    ``{"sources": {"main.c": "..."}}``, plus
    ``"instance": {"label": "softbound-ranges"}`` (or the explicit
    mechanism/filters/mode/engine form) and optionally
    ``"max_instructions"``.  Responds with
    ``{"ok": …, "cached": …, "result": <BenchResult JSON>}``.

Errors are structured: 400 with ``{"error": ...}`` for bad requests
(unknown mechanism/workload, malformed JSON), 404 for unknown paths.
The server is intentionally plain ``http.server`` -- no new
dependencies -- and serializes job execution with a lock (the engine
itself fans out over worker processes)."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import ConfigError, ReproError
from ..experiments.common import CONFIG_LABELS
from ..experiments.runner import ExperimentEngine
from .model import Instance, Target

#: Cap request bodies (a campaign-sized source set is ~100 KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024


class CampaignService:
    """The daemon's engine-facing half, separable from HTTP for tests."""

    def __init__(self, engine: ExperimentEngine,
                 default_max_instructions: Optional[int] = None):
        self.engine = engine
        self._lock = threading.Lock()
        self.default_max_instructions = default_max_instructions
        self.requests_served = 0

    # -- endpoint bodies -----------------------------------------------
    def health(self) -> dict:
        return {
            "ok": True,
            "requests_served": self.requests_served,
            "executed_jobs": self.engine.executed_jobs,
            "cache_hits": self.engine.cache_hits,
        }

    def instances(self) -> dict:
        from ..core.mechanism import get_mechanism, mechanism_names

        return {
            "mechanisms": {
                name: get_mechanism(name).description
                for name in mechanism_names()
            },
            "labels": list(CONFIG_LABELS),
        }

    def workloads(self) -> dict:
        from ..workloads import all_names

        return {"workloads": all_names()}

    def run_job(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ConfigError("request body must be a JSON object")
        body = dict(body)
        instance_doc = body.pop("instance", {"label": "baseline"})
        if isinstance(instance_doc, str):
            instance_doc = {"label": instance_doc}
        instance = Instance.parse(instance_doc)
        workload = body.pop("workload", None)
        sources = body.pop("sources", None)
        max_instructions = body.pop("max_instructions",
                                    self.default_max_instructions)
        if body:
            raise ConfigError(
                f"unknown request key(s): {', '.join(sorted(body))}")
        if (workload is None) == (sources is None):
            raise ConfigError(
                "request needs exactly one of 'workload' (a bundled "
                "name) or 'sources' (a unit-name -> MiniC text object)")
        if workload is not None:
            target = Target(str(workload))
        else:
            if not isinstance(sources, dict) or not sources:
                raise ConfigError("'sources' must be a non-empty object")
            target = Target("submitted", sources={
                str(k): str(v) for k, v in sources.items()})
        request = instance.request(
            target,
            max_instructions=(int(max_instructions)
                              if max_instructions is not None else None))
        with self._lock:
            executed_before = self.engine.executed_jobs
            result = self.engine.run_request(request)
            # served from the memo or the disk cache, not computed fresh
            cached = self.engine.executed_jobs == executed_before
            self.requests_served += 1
        return {
            "ok": result.ok,
            "cached": cached,
            "instance": instance.name,
            "target": target.name,
            "result": result.to_json(),
        }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"

    # the ThreadingHTTPServer instance carries the service
    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------
    def _reply(self, status: int, document: dict) -> None:
        payload = json.dumps(document, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ConfigError(
                f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"invalid JSON body: {exc}") from None

    # -- methods -------------------------------------------------------
    def do_GET(self):  # noqa: N802 - stdlib casing
        routes = {
            "/health": self.service.health,
            "/instances": self.service.instances,
            "/workloads": self.service.workloads,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        self._reply(200, handler())

    def do_POST(self):  # noqa: N802 - stdlib casing
        if self.path != "/run":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            body = self._read_body()
            document = self.service.run_job(body)
        except ConfigError as exc:
            self._reply(400, {"error": str(exc)})
            return
        except ReproError as exc:
            self._reply(500, {"error": str(exc)})
            return
        self._reply(200, document)


def make_server(
    host: str,
    port: int,
    engine: ExperimentEngine,
    default_max_instructions: Optional[int] = None,
    verbose: bool = False,
) -> Tuple[ThreadingHTTPServer, CampaignService]:
    """Bind the daemon (``port=0`` picks a free port; read it back from
    ``server.server_address``)."""
    service = CampaignService(
        engine, default_max_instructions=default_max_instructions)
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server, service

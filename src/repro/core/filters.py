"""ITarget filters: approach-independent check optimizations.

The paper's Section 5.3 optimization: when two accesses go to the same
memory location and one dominates the other, the dominated check is
redundant -- if the first access was in bounds, so is the second.  The
filter drops the dominated :class:`~repro.core.itarget.ITarget` before
the mechanism ever emits code for it (8%--50% of static checks in the
paper's benchmarks, with only minor runtime impact because the compiler
can also remove the residual duplicates on its own).

On top of that, ``range_filter`` (``-mi-opt-ranges``) goes beyond
duplicate elimination: using the interprocedural value-range and
pointer-provenance analysis it drops dereference checks whose access is
*provably inside the witness allocation* on every execution -- no
dominating twin required.  The soundness argument lives with the filter
below (and in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..analysis.induction import (
    AffinePointer,
    CountedLoop,
    affine_pointer,
    analyze_counted_loop,
    extent_bytes,
    _may_abort_call,
)
from ..analysis.loops import LoopInfo
from ..analysis.ranges import FunctionRangeAnalysis, ReturnSummaries
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function
from ..ir.types import I8, I64, PointerType
from ..ir.values import Value
from .itarget import ITarget, TargetKind


def dominance_filter(
    fn: Function, targets: List[ITarget]
) -> Tuple[List[ITarget], int]:
    """Drop dominated duplicate dereference checks.

    Two checks are duplicates when they check the *same pointer SSA
    value* and the surviving (dominating) check covers at least the
    width of the dropped one.  Returns the filtered target list and the
    number of checks removed.
    """
    checks = [t for t in targets if t.kind == TargetKind.CHECK_DEREF]
    if len(checks) < 2:
        return targets, 0
    domtree = DominatorTree(fn)
    by_pointer: Dict[int, List[ITarget]] = {}
    for target in checks:
        by_pointer.setdefault(id(target.pointer), []).append(target)

    removed = set()
    for group in by_pointer.values():
        if len(group) < 2:
            continue
        for candidate in group:
            if id(candidate) in removed:
                continue
            for other in group:
                if other is candidate or id(other) in removed:
                    continue
                if other.width < candidate.width:
                    continue
                if domtree.dominates(other.instruction, candidate.instruction):
                    removed.add(id(candidate))
                    break

    filtered = [t for t in targets if id(t) not in removed]
    return filtered, len(removed)


def range_filter(
    fn: Function,
    targets: List[ITarget],
    summaries: Optional[ReturnSummaries] = None,
    analysis: Optional[FunctionRangeAnalysis] = None,
) -> Tuple[List[ITarget], int]:
    """Drop dereference checks the range analysis proves in bounds.

    A ``CHECK_DEREF`` of ``width`` bytes is removed iff the analysis
    derives a provenance fact ``(site, size, offset)`` for the pointer
    at the check's program point with ``offset.lo >= 0`` and
    ``offset.hi + width <= size``.  Why this is sound for both
    instrumentations:

    * the fact is a *may* interval covering every concrete execution
      (transfer functions are wrap-sound, merges join, loops widen),
      so the proof holds on all paths;
    * proofs are against the *requested* allocation size.  Low-Fat
      rounds sizes up to its region class, SoftBound records the exact
      size -- in both cases the runtime bound is at least the
      requested size, so a requested-size proof implies the dynamic
      check would pass;
    * temporal errors cannot hide behind a dropped check: both
      mechanisms' dereference checks are purely spatial (a freed but
      in-bounds pointer passes them anyway), so removing a provably
      in-bounds check never masks a verdict the dynamic check would
      have produced;
    * the VM's ``malloc`` aborts rather than returning NULL, so an
      allocation-site fact implies a valid base pointer.

    Invariant targets (escapes into memory/calls/returns) are never
    dropped -- metadata propagation must stay complete.  Returns the
    filtered list and the number of checks removed.
    """
    if not any(t.kind == TargetKind.CHECK_DEREF for t in targets):
        return targets, 0
    if analysis is None:
        analysis = FunctionRangeAnalysis(fn, summaries)
    removed = set()
    for target in targets:
        if target.kind != TargetKind.CHECK_DEREF or target.pointer is None:
            continue
        fact = analysis.pointer_fact_before(target.instruction,
                                            target.pointer)
        if fact is not None and fact.proves_in_bounds(target.width):
            removed.add(id(target))
    if not removed:
        return targets, 0
    filtered = [t for t in targets if id(t) not in removed]
    return filtered, len(removed)


# ----------------------------------------------------------------------
# Loop-aware hoisting and block coalescing (``-mi-opt-hoist``)
# ----------------------------------------------------------------------


def _synthesize_check(
    fn: Function,
    anchor: Instruction,
    root: Value,
    lo,                      # int or i64 Value: start byte offset
    extent,                  # int or i64 Value: covered bytes
    width: int,
    site: str,
) -> ITarget:
    """Materialize the widened check's operands right before ``anchor``
    and return the replacement ITarget.

    The pointer is built as ``gep i8* (bitcast root), lo`` rather than
    through ``ptrtoint`` arithmetic: both mechanisms resolve a check's
    witness by stripping GEP/bitcast chains, so the synthesized check
    inherits the *root's* witness (exactly the allocation the original
    per-iteration checks were checked against).  Every instruction is
    tagged ``meta["mi"]`` so re-gathering skips it and the profiler
    attributes its cycles to instrumentation.
    """
    from .mechanism import MarkingBuilder

    builder = MarkingBuilder(fn)
    builder.position_before(anchor)
    base = builder.bitcast(root, PointerType(I8))
    index = builder.const_i64(lo) if isinstance(lo, int) else lo
    pointer = builder.gep(base, [index])
    width_value = None if isinstance(extent, int) else extent
    return ITarget(
        kind=TargetKind.CHECK_DEREF,
        instruction=anchor,
        pointer=pointer,
        width=extent if isinstance(extent, int) else width,
        site=site,
        width_value=width_value,
    )


def _hoist_loop_groups(
    fn: Function,
    counted: CountedLoop,
    members: "Dict[Tuple[int, int, bool], Tuple[Value, List[Tuple[ITarget, AffinePointer]]]]",
    site_counter: List[int],
) -> Tuple[List[ITarget], set]:
    """Synthesize one widened preheader check per (root, slope,
    header-resident) group and report the replaced member targets.
    Header-resident members also execute on the final exit-test entry
    (``iv == last + step``), so their group's hull extends one step
    further than a body group's."""
    from .mechanism import MarkingBuilder

    preheader = counted.preheader
    anchor = preheader.terminator
    builder = MarkingBuilder(fn)
    synthesized: List[ITarget] = []
    removed: set = set()
    last_value = None  # lazily computed runtime last-IV (i64)

    def runtime_last() -> Value:
        # last = init + floor((bound' - init) / step) * step, where
        # bound' is bound-1 for slt/ne and bound for sle.  The >=1
        # iteration proof makes the numerator non-negative, so sdiv
        # is the floor division the formula needs.
        nonlocal last_value
        if last_value is not None:
            return last_value
        builder.position_before(anchor)
        bound = counted.bound
        b64 = bound if bound.type == I64 else builder.sext(bound, I64)
        upper = b64 if counted.predicate == "sle" else \
            builder.sub(b64, builder.const_i64(1))
        if counted.step == 1:
            last_value = upper
        else:
            span = builder.sub(upper, builder.const_i64(counted.init))
            trips = builder.binop("sdiv", span,
                                  builder.const_i64(counted.step))
            stepped = builder.mul(trips, builder.const_i64(counted.step))
            last_value = builder.add(stepped, builder.const_i64(counted.init))
        return last_value

    for (_, slope, header_resident), (root, group) in members.items():
        extra = counted.step if header_resident else 0
        min_b = min(aff.intercept for _, aff in group)
        max_end = max(aff.intercept + t.width for t, aff in group)
        max_width = max(t.width for t, _ in group)
        site_counter[0] += 1
        site = f"{fn.name}:{preheader.name}:hoist{site_counter[0]}"
        if slope == 0:
            lo, extent = min_b, max_end - min_b
        elif counted.static_last is not None:
            first = slope * counted.init
            last = slope * (counted.static_last + extra)
            lo = min(first, last) + min_b
            extent = max(first, last) + max_end - lo
        else:
            builder.position_before(anchor)
            last_v = runtime_last()
            if extra:
                last_v = builder.add(last_v, builder.const_i64(extra))
            scaled = builder.mul(last_v, builder.const_i64(slope))
            if slope > 0:
                lo = slope * counted.init + min_b
                hi = builder.add(scaled, builder.const_i64(max_end))
                extent = builder.sub(hi, builder.const_i64(lo))
            else:
                lo = builder.add(scaled, builder.const_i64(min_b))
                hi = slope * counted.init + max_end
                extent = builder.sub(builder.const_i64(hi), lo)
        synthesized.append(_synthesize_check(
            fn, anchor, root, lo, extent, max_width, site))
        removed.update(id(t) for t, _ in group)
    return synthesized, removed


def hoist_filter(
    fn: Function,
    targets: List[ITarget],
    summaries: Optional[ReturnSummaries] = None,
    analysis: Optional[FunctionRangeAnalysis] = None,
) -> Tuple[List[ITarget], int, int, int]:
    """Hoist per-iteration loop checks into one widened preheader
    check, then coalesce same-root constant-offset check runs within
    blocks.  Returns ``(targets, hoisted, coalesced, synthesized)``.

    Legality and exactness (the full argument lives in
    :mod:`repro.analysis.induction` and DESIGN.md section 3h):

    * only *counted* loops qualify (exact trip count, header-only
      exit, no may-abort calls, proven to run at least once, no
      IV/index wrap), and only checks whose block dominates the latch
      (they execute on every iteration); header-resident checks
      additionally run on the final exit-test entry with
      ``iv == last + step``, so their hull is widened by one step;
    * the widened check's extent is computed from the *dynamic* trip
      count -- synthesized i64 arithmetic on the loop bound -- so the
      checked interval is exactly the hull of the accessed bytes;
    * allocations are contiguous, so the hull is in bounds iff the
      extreme accesses are, iff every replaced check would have
      passed: abort-free executions are bit-identical, and a widened
      check that aborts corresponds to some original check aborting
      (possibly later, mid-loop -- the one observable difference,
      which only violating programs can see);
    * a coalesced block run's members sit between no may-abort calls,
      so whenever the run's first member executes, all members do.
    """
    checks = [
        t for t in targets
        if t.kind == TargetKind.CHECK_DEREF and t.pointer is not None
    ]
    if not checks:
        return targets, 0, 0, 0
    domtree = DominatorTree(fn)
    loopinfo = LoopInfo(fn, domtree)
    if analysis is None:
        analysis = FunctionRangeAnalysis(fn, summaries)

    site_counter = [0]
    removed: set = set()
    synthesized: List[ITarget] = []
    hoisted = 0

    # -- stage 1: loop hoisting ---------------------------------------
    loops = sorted(loopinfo.all_loops(),
                   key=lambda l: domtree._rpo_index.get(l.header, 0))
    for loop in loops:
        counted = analyze_counted_loop(loop, domtree, analysis)
        if counted is None:
            continue
        groups: Dict[Tuple[int, int, bool],
                     Tuple[Value, List[Tuple[ITarget, AffinePointer]]]] = {}
        for target in checks:
            if id(target) in removed:
                continue
            block = target.instruction.parent
            # The check must live in this loop *proper*: a subloop
            # member runs a subloop-trip-count (possibly zero) number
            # of times per iteration, so "once per iteration" fails.
            if loopinfo.loop_of(block) is not loop:
                continue
            if not domtree.dominates_block(block, counted.latch):
                continue
            # Header instructions also run on the final exit-test
            # entry (iv == last + step): their group's hull must cover
            # one extra step, so they are keyed separately.
            header_resident = block is loop.header
            aff = affine_pointer(target.pointer, counted.iv,
                                 counted.preheader.terminator, domtree,
                                 counted.iv_range(header_resident))
            if aff is None:
                continue
            key = (id(aff.root), aff.slope, header_resident)
            groups.setdefault(key, (aff.root, []))[1].append((target, aff))
        if not groups:
            continue
        new_checks, replaced = _hoist_loop_groups(
            fn, counted, groups, site_counter)
        synthesized.extend(new_checks)
        removed.update(replaced)
        hoisted += len(replaced)

    # -- stage 2: block-level run coalescing --------------------------
    coalesced = 0
    remaining = [t for t in checks if id(t) not in removed]
    by_block: Dict[BasicBlock, List[ITarget]] = {}
    for target in remaining:
        by_block.setdefault(target.instruction.parent, []).append(target)
    for block, block_checks in by_block.items():
        positions = {id(t): block.index_of(t.instruction)
                     for t in block_checks}
        block_checks.sort(key=lambda t: positions[id(t)])
        barriers = [i for i, inst in enumerate(block.instructions)
                    if _may_abort_call(inst)]
        run: List[Tuple[ITarget, AffinePointer]] = []
        run_root_id: Optional[int] = None

        def flush() -> None:
            nonlocal coalesced, run, run_root_id
            if len(run) >= 2:
                first_t, first_aff = run[0]
                lo = min(aff.intercept for _, aff in run)
                hi = max(aff.intercept + t.width for t, aff in run)
                site_counter[0] += 1
                site = (f"{fn.name}:{block.name}:"
                        f"coalesce{site_counter[0]}")
                synthesized.append(_synthesize_check(
                    fn, first_t.instruction, first_aff.root, lo, hi - lo,
                    hi - lo, site))
                removed.update(id(t) for t, _ in run)
                coalesced += len(run)
            run = []
            run_root_id = None

        prev_pos: Optional[int] = None
        for target in block_checks:
            pos = positions[id(target)]
            aff = affine_pointer(target.pointer, None,
                                 target.instruction, domtree)
            crossed_barrier = prev_pos is not None and any(
                prev_pos < b < pos for b in barriers)
            if aff is None or crossed_barrier or (
                    run and id(aff.root) != run_root_id):
                flush()
            if aff is not None:
                run.append((target, aff))
                run_root_id = id(aff.root)
                prev_pos = pos
            else:
                prev_pos = pos
        flush()

    if not removed:
        return targets, 0, 0, 0
    result = [t for t in targets if id(t) not in removed]
    result.extend(synthesized)
    return result, hoisted, coalesced, len(synthesized)


# ----------------------------------------------------------------------
# Static safety verdicts
# ----------------------------------------------------------------------

PROVEN_SAFE = "proven-safe"
PROVEN_VIOLATING = "proven-violating"
UNKNOWN = "unknown"


def check_verdicts(
    fn: Function,
    targets: List[ITarget],
    summaries: Optional[ReturnSummaries] = None,
    analysis: Optional[FunctionRangeAnalysis] = None,
) -> Dict[str, str]:
    """Per-check-site static safety verdicts over the gathered checks.

    Two proof sources, both sound over every execution that reaches
    the check:

    * the per-point range/provenance fact of the checked pointer
      (exactly the range filter's criterion, plus its dual for
      proven violations);
    * the loop-extent argument: for a counted loop with a static trip
      count, the accessed byte hull of an affine check is static, and
      comparing it against the known witness allocation proves every
      iteration safe -- or proves the hull's genuinely-accessed
      endpoint out of bounds (``proven-violating``), which per-point
      facts cannot (only the *last* iterations violate).
    """
    verdicts: Dict[str, str] = {}
    checks = [
        t for t in targets
        if t.kind == TargetKind.CHECK_DEREF and t.pointer is not None
    ]
    if not checks:
        return verdicts
    if analysis is None:
        analysis = FunctionRangeAnalysis(fn, summaries)
    for target in checks:
        fact = analysis.pointer_fact_before(target.instruction,
                                            target.pointer)
        if fact is not None and fact.proves_in_bounds(target.width):
            verdicts[target.site] = PROVEN_SAFE
        elif fact is not None and fact.proves_out_of_bounds(target.width):
            verdicts[target.site] = PROVEN_VIOLATING
        else:
            verdicts[target.site] = UNKNOWN

    domtree = DominatorTree(fn)
    loopinfo = LoopInfo(fn, domtree)
    for loop in loopinfo.all_loops():
        counted = analyze_counted_loop(loop, domtree, analysis)
        if counted is None or counted.static_last is None:
            continue
        for target in checks:
            if verdicts.get(target.site) != UNKNOWN:
                continue
            block = target.instruction.parent
            # Same membership rule as hoisting: the extremes of the
            # hull are genuinely accessed only if the check runs once
            # per iteration of *this* loop (not a possibly-zero-trip
            # subloop).  Header-resident checks run once more, on the
            # final exit-test entry, so their hull is one step wider.
            if loopinfo.loop_of(block) is not loop:
                continue
            if not domtree.dominates_block(block, counted.latch):
                continue
            header_resident = block is loop.header
            aff = affine_pointer(target.pointer, counted.iv,
                                 counted.preheader.terminator, domtree,
                                 counted.iv_range(header_resident))
            if aff is None:
                continue
            extent = extent_bytes(aff, counted, target.width,
                                  header_resident)
            if extent is None:
                continue
            root_fact = analysis.pointer_fact_before(
                counted.preheader.terminator, aff.root)
            if root_fact is None or root_fact.size is None:
                continue
            lo, hi = extent
            off = root_fact.offset
            if off.lo + lo >= 0 and off.hi + hi <= root_fact.size:
                verdicts[target.site] = PROVEN_SAFE
            elif off.lo + hi > root_fact.size or off.hi + lo < 0:
                verdicts[target.site] = PROVEN_VIOLATING
    return verdicts

"""ITarget filters: approach-independent check optimizations.

The paper's Section 5.3 optimization: when two accesses go to the same
memory location and one dominates the other, the dominated check is
redundant -- if the first access was in bounds, so is the second.  The
filter drops the dominated :class:`~repro.core.itarget.ITarget` before
the mechanism ever emits code for it (8%--50% of static checks in the
paper's benchmarks, with only minor runtime impact because the compiler
can also remove the residual duplicates on its own).

On top of that, ``range_filter`` (``-mi-opt-ranges``) goes beyond
duplicate elimination: using the interprocedural value-range and
pointer-provenance analysis it drops dereference checks whose access is
*provably inside the witness allocation* on every execution -- no
dominating twin required.  The soundness argument lives with the filter
below (and in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..analysis.ranges import FunctionRangeAnalysis, ReturnSummaries
from ..ir.module import Function
from .itarget import ITarget, TargetKind


def dominance_filter(
    fn: Function, targets: List[ITarget]
) -> Tuple[List[ITarget], int]:
    """Drop dominated duplicate dereference checks.

    Two checks are duplicates when they check the *same pointer SSA
    value* and the surviving (dominating) check covers at least the
    width of the dropped one.  Returns the filtered target list and the
    number of checks removed.
    """
    checks = [t for t in targets if t.kind == TargetKind.CHECK_DEREF]
    if len(checks) < 2:
        return targets, 0
    domtree = DominatorTree(fn)
    by_pointer: Dict[int, List[ITarget]] = {}
    for target in checks:
        by_pointer.setdefault(id(target.pointer), []).append(target)

    removed = set()
    for group in by_pointer.values():
        if len(group) < 2:
            continue
        for candidate in group:
            if id(candidate) in removed:
                continue
            for other in group:
                if other is candidate or id(other) in removed:
                    continue
                if other.width < candidate.width:
                    continue
                if domtree.dominates(other.instruction, candidate.instruction):
                    removed.add(id(candidate))
                    break

    filtered = [t for t in targets if id(t) not in removed]
    return filtered, len(removed)


def range_filter(
    fn: Function,
    targets: List[ITarget],
    summaries: Optional[ReturnSummaries] = None,
) -> Tuple[List[ITarget], int]:
    """Drop dereference checks the range analysis proves in bounds.

    A ``CHECK_DEREF`` of ``width`` bytes is removed iff the analysis
    derives a provenance fact ``(site, size, offset)`` for the pointer
    at the check's program point with ``offset.lo >= 0`` and
    ``offset.hi + width <= size``.  Why this is sound for both
    instrumentations:

    * the fact is a *may* interval covering every concrete execution
      (transfer functions are wrap-sound, merges join, loops widen),
      so the proof holds on all paths;
    * proofs are against the *requested* allocation size.  Low-Fat
      rounds sizes up to its region class, SoftBound records the exact
      size -- in both cases the runtime bound is at least the
      requested size, so a requested-size proof implies the dynamic
      check would pass;
    * temporal errors cannot hide behind a dropped check: both
      mechanisms' dereference checks are purely spatial (a freed but
      in-bounds pointer passes them anyway), so removing a provably
      in-bounds check never masks a verdict the dynamic check would
      have produced;
    * the VM's ``malloc`` aborts rather than returning NULL, so an
      allocation-site fact implies a valid base pointer.

    Invariant targets (escapes into memory/calls/returns) are never
    dropped -- metadata propagation must stay complete.  Returns the
    filtered list and the number of checks removed.
    """
    if not any(t.kind == TargetKind.CHECK_DEREF for t in targets):
        return targets, 0
    analysis = FunctionRangeAnalysis(fn, summaries)
    removed = set()
    for target in targets:
        if target.kind != TargetKind.CHECK_DEREF or target.pointer is None:
            continue
        fact = analysis.pointer_fact_before(target.instruction,
                                            target.pointer)
        if fact is not None and fact.proves_in_bounds(target.width):
            removed.add(id(target))
    if not removed:
        return targets, 0
    filtered = [t for t in targets if id(t) not in removed]
    return filtered, len(removed)

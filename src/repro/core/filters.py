"""ITarget filters: approach-independent check optimizations.

The paper's Section 5.3 optimization: when two accesses go to the same
memory location and one dominates the other, the dominated check is
redundant -- if the first access was in bounds, so is the second.  The
filter drops the dominated :class:`~repro.core.itarget.ITarget` before
the mechanism ever emits code for it (8%--50% of static checks in the
paper's benchmarks, with only minor runtime impact because the compiler
can also remove the residual duplicates on its own).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.dominators import DominatorTree
from ..ir.module import Function
from .itarget import ITarget, TargetKind


def dominance_filter(
    fn: Function, targets: List[ITarget]
) -> Tuple[List[ITarget], int]:
    """Drop dominated duplicate dereference checks.

    Two checks are duplicates when they check the *same pointer SSA
    value* and the surviving (dominating) check covers at least the
    width of the dropped one.  Returns the filtered target list and the
    number of checks removed.
    """
    checks = [t for t in targets if t.kind == TargetKind.CHECK_DEREF]
    if len(checks) < 2:
        return targets, 0
    domtree = DominatorTree(fn)
    by_pointer: Dict[int, List[ITarget]] = {}
    for target in checks:
        by_pointer.setdefault(id(target.pointer), []).append(target)

    removed = set()
    for group in by_pointer.values():
        if len(group) < 2:
            continue
        for candidate in group:
            if id(candidate) in removed:
                continue
            for other in group:
                if other is candidate or id(other) in removed:
                    continue
                if other.width < candidate.width:
                    continue
                if domtree.dominates(other.instruction, candidate.instruction):
                    removed.add(id(candidate))
                    break

    filtered = [t for t in targets if id(t) not in removed]
    return filtered, len(removed)

"""Instrumentation targets (ITargets).

The framework's central abstraction (paper Section 3): an ITarget names
a code location that an instrumentation must handle, together with the
task at that location (Table 1).  Gathering produces ITargets, filters
(e.g. the dominance-based check elimination) drop some, and the
approach-specific mechanism lowers the survivors into code.

Kinds:

* ``CHECK_DEREF``      -- ensure safety of a load/store (in-bounds check);
* ``INVARIANT_STORE``  -- a pointer value escapes through a store
                          (SoftBound: trie update; Low-Fat: escape check);
* ``INVARIANT_CALL``   -- pointer arguments escape into a callee
                          (SoftBound: shadow-stack push; Low-Fat: checks);
* ``INVARIANT_RET``    -- a pointer value is returned
                          (SoftBound: return-slot write; Low-Fat: check);
* ``INVARIANT_CAST``   -- a pointer is cast to an integer (Low-Fat adds
                          an escape check, Section 4.4; SoftBound: none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.instructions import Instruction
from ..ir.values import Value


class TargetKind:
    CHECK_DEREF = "check_deref"
    INVARIANT_STORE = "invariant_store"
    INVARIANT_CALL = "invariant_call"
    INVARIANT_RET = "invariant_ret"
    INVARIANT_CAST = "invariant_cast"

    ALL = (CHECK_DEREF, INVARIANT_STORE, INVARIANT_CALL, INVARIANT_RET,
           INVARIANT_CAST)


@dataclass
class ITarget:
    kind: str
    instruction: Instruction      # the location to instrument
    pointer: Optional[Value]      # the pointer the task concerns
    width: int = 0                # access width in bytes (checks only)
    site: str = ""                # stable identifier for statistics
    #: Checks synthesized by the hoist filter cover a *symbolic* number
    #: of bytes (the loop's accessed extent, an i64 SSA value computed
    #: in the preheader).  When set, mechanisms pass this value as the
    #: check's width operand instead of the constant ``width``.
    width_value: Optional[Value] = None

    def is_check(self) -> bool:
        return self.kind == TargetKind.CHECK_DEREF

    def is_invariant(self) -> bool:
        return self.kind != TargetKind.CHECK_DEREF

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ITarget {self.kind} at {self.site or self.instruction.opcode}>"


@dataclass
class CheckSiteInfo:
    """Static provenance of one emitted check site.

    Built by the mechanisms while lowering (they know the witness each
    check uses) and joined by ``repro profile`` with the dynamic
    :attr:`RuntimeStats.per_site` counters, giving the measured version
    of Table 2's attribution: which source line runs how many checks,
    and *why* a site's checks run with wide bounds."""

    site: str
    function: str
    kind: str                     # "deref" | "invariant"
    mechanism: str                # "softbound" | "lowfat"
    line: Optional[int] = None    # source line (IRBuilder.current_line)
    source: str = ""              # what produced the checked pointer
    wide_hint: str = ""           # static reason the bounds may be wide

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "function": self.function,
            "kind": self.kind,
            "mechanism": self.mechanism,
            "line": self.line,
            "source": self.source,
            "wide_hint": self.wide_hint,
        }


@dataclass
class TargetStatistics:
    """Static instrumentation statistics, per function or module.

    Feeds the Table 1 location counts and the Section 5.3 numbers on
    how many checks the dominance filter removes."""

    gathered_checks: int = 0
    gathered_invariants: int = 0
    filtered_checks: int = 0
    range_filtered_checks: int = 0
    #: Checks replaced by a widened preheader check (``-mi-opt-hoist``).
    hoisted_checks: int = 0
    #: Checks merged into a block-level run check (``-mi-opt-hoist``).
    coalesced_checks: int = 0
    #: Widened checks the hoist filter added (one per loop group / run).
    synthesized_checks: int = 0
    #: Per-site static safety verdicts over the gathered checks
    #: ("proven-safe" / "proven-violating" / "unknown"); populated when
    #: the range analysis runs (``-mi-opt-ranges`` / ``-mi-opt-hoist``).
    verdicts: dict = field(default_factory=dict)
    by_kind: dict = field(default_factory=dict)

    def count(self, target: ITarget) -> None:
        self.by_kind[target.kind] = self.by_kind.get(target.kind, 0) + 1
        if target.is_check():
            self.gathered_checks += 1
        else:
            self.gathered_invariants += 1

    def merge(self, other: "TargetStatistics") -> None:
        self.gathered_checks += other.gathered_checks
        self.gathered_invariants += other.gathered_invariants
        self.filtered_checks += other.filtered_checks
        self.range_filtered_checks += other.range_filtered_checks
        self.hoisted_checks += other.hoisted_checks
        self.coalesced_checks += other.coalesced_checks
        self.synthesized_checks += other.synthesized_checks
        for verdict, count in other.verdicts.items():
            self.verdicts[verdict] = self.verdicts.get(verdict, 0) + count
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count

    @property
    def emitted_checks(self) -> int:
        return (self.gathered_checks - self.filtered_checks
                - self.range_filtered_checks - self.hoisted_checks
                - self.coalesced_checks + self.synthesized_checks)

    @property
    def filtered_fraction(self) -> float:
        if not self.gathered_checks:
            return 0.0
        return self.filtered_checks / self.gathered_checks

    @property
    def range_filtered_fraction(self) -> float:
        if not self.gathered_checks:
            return 0.0
        return self.range_filtered_checks / self.gathered_checks

    @property
    def hoisted_fraction(self) -> float:
        if not self.gathered_checks:
            return 0.0
        return (self.hoisted_checks + self.coalesced_checks) / self.gathered_checks

    @property
    def proven_safe_fraction(self) -> float:
        """Share of gathered checks the range analysis proved safe --
        the static side of "X% of dynamic checks were provable"."""
        total = sum(self.verdicts.values())
        if not total:
            return 0.0
        return self.verdicts.get("proven-safe", 0) / total

"""MemInstrument core: the instrumentation framework (paper Section 3)."""

from .config import InstrumentationConfig
from .filters import (
    check_verdicts,
    dominance_filter,
    hoist_filter,
    range_filter,
)
from .gather import gather_function_targets
from .instrument import (
    InstrumenterHandle,
    MemInstrumentPass,
    instrument_module,
    make_instrumenter,
)
from .itarget import ITarget, TargetKind, TargetStatistics
from .lf_mechanism import LowFatMechanism
from .mechanism import (
    InstrumentationMechanism,
    MechanismRegistration,
    create_mechanism,
    get_mechanism,
    install_runtime,
    mechanism_names,
    register_mechanism,
)
from .sb_mechanism import SoftBoundMechanism

__all__ = [
    "ITarget",
    "InstrumentationConfig",
    "InstrumentationMechanism",
    "InstrumenterHandle",
    "LowFatMechanism",
    "MechanismRegistration",
    "MemInstrumentPass",
    "SoftBoundMechanism",
    "TargetKind",
    "TargetStatistics",
    "check_verdicts",
    "create_mechanism",
    "dominance_filter",
    "gather_function_targets",
    "hoist_filter",
    "get_mechanism",
    "install_runtime",
    "mechanism_names",
    "range_filter",
    "register_mechanism",
    "instrument_module",
    "make_instrumenter",
]

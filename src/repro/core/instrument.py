"""MemInstrument: the instrumentation pass orchestrator.

Runs the framework stages of paper Section 3 over a module:

1. **prepare** -- mechanism-specific rewriting (runtime declarations,
   allocator redirection, Low-Fat alloca replacement);
2. **gather**  -- collect the approach-independent ITargets (Table 1);
3. **filter**  -- approach-independent check optimizations (the
   dominance-based elimination of Section 5.3, when enabled);
4. **lower**   -- the mechanism materializes witnesses and emits
   checks, metadata updates and invariant code.

``make_instrumenter`` wraps the pass as a pipeline callback so it can
be plugged into any of the compiler pipeline's extension points
(Figure 8), and records static statistics on the returned handle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..analysis.ranges import ReturnSummaries
from ..ir.module import Function, Module
from ..ir.verifier import verify_module
from .config import InstrumentationConfig
from .filters import dominance_filter, range_filter
from .gather import gather_function_targets
from .itarget import CheckSiteInfo, ITarget, TargetStatistics
from .mechanism import InstrumentationMechanism, create_mechanism


class MemInstrumentPass:
    """The instrumentation as a reusable pass object.

    After :meth:`run`, ``statistics`` holds the per-module static
    counts (gathered/filtered/emitted targets per kind)."""

    def __init__(self, config: InstrumentationConfig, verify: bool = False):
        self.config = config
        self.verify = verify
        self.statistics = TargetStatistics()
        self.per_function: Dict[str, TargetStatistics] = {}
        #: site id -> static provenance of the emitted check (joined
        #: with the dynamic per-site counters by ``repro profile``).
        self.check_sites: Dict[str, CheckSiteInfo] = {}

    def run(self, module: Module) -> None:
        mechanism = create_mechanism(self.config)
        if mechanism is None:
            return
        mechanism.prepare_module(module)
        # One summary table serves the whole module: the range filter's
        # interprocedural component memoizes per-callee return ranges.
        summaries = ReturnSummaries(module) if self.config.opt_ranges else None
        for fn in list(module.functions.values()):
            if fn.native or fn.is_declaration:
                continue
            if "mi_ignore" in fn.attributes:
                continue
            self._instrument_function(mechanism, fn, summaries)
        self.check_sites.update(mechanism.site_infos)
        if self.verify:
            verify_module(module)

    def _instrument_function(
        self,
        mechanism: InstrumentationMechanism,
        fn: Function,
        summaries: Optional[ReturnSummaries] = None,
    ) -> None:
        mechanism.prepare_function(fn)
        targets = gather_function_targets(fn)
        stats = TargetStatistics()
        for target in targets:
            stats.count(target)
        if self.config.opt_dominance:
            targets, removed = dominance_filter(fn, targets)
            stats.filtered_checks = removed
        if self.config.opt_ranges:
            targets, removed = range_filter(fn, targets, summaries)
            stats.range_filtered_checks = removed
        mechanism.instrument_function(fn, targets)
        self.per_function[fn.name] = stats
        self.statistics.merge(stats)


def instrument_module(
    module: Module, config: InstrumentationConfig, verify: bool = False
) -> MemInstrumentPass:
    """Instrument a module in place; returns the pass (for statistics)."""
    pass_ = MemInstrumentPass(config, verify)
    pass_.run(module)
    return pass_


def make_instrumenter(
    config: InstrumentationConfig, verify: bool = False
) -> "InstrumenterHandle":
    """An instrumentation callback for
    :func:`repro.opt.pipeline.build_pipeline`'s ``instrument`` hook."""
    return InstrumenterHandle(config, verify)


class InstrumenterHandle:
    def __init__(self, config: InstrumentationConfig, verify: bool):
        self.pass_ = MemInstrumentPass(config, verify)
        self.ran = False

    def __call__(self, module: Module) -> None:
        self.pass_.run(module)
        self.ran = True

    @property
    def statistics(self) -> TargetStatistics:
        return self.pass_.statistics

    @property
    def per_function(self) -> Dict[str, TargetStatistics]:
        return self.pass_.per_function

    @property
    def check_sites(self) -> Dict[str, CheckSiteInfo]:
        return self.pass_.check_sites

"""MemInstrument: the instrumentation pass orchestrator.

Runs the framework stages of paper Section 3 over a module:

1. **prepare** -- mechanism-specific rewriting (runtime declarations,
   allocator redirection, Low-Fat alloca replacement);
2. **gather**  -- collect the approach-independent ITargets (Table 1);
3. **filter**  -- approach-independent check optimizations (the
   dominance-based elimination of Section 5.3, when enabled);
4. **lower**   -- the mechanism materializes witnesses and emits
   checks, metadata updates and invariant code.

``make_instrumenter`` wraps the pass as a pipeline callback so it can
be plugged into any of the compiler pipeline's extension points
(Figure 8), and records static statistics on the returned handle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..analysis.ranges import FunctionRangeAnalysis, ReturnSummaries
from ..ir.module import Function, Module
from ..ir.verifier import verify_module
from .config import InstrumentationConfig
from .filters import check_verdicts, dominance_filter, hoist_filter, range_filter
from .gather import gather_function_targets
from .itarget import CheckSiteInfo, ITarget, TargetStatistics
from .mechanism import InstrumentationMechanism, create_mechanism


class MemInstrumentPass:
    """The instrumentation as a reusable pass object.

    After :meth:`run`, ``statistics`` holds the per-module static
    counts (gathered/filtered/emitted targets per kind)."""

    def __init__(self, config: InstrumentationConfig, verify: bool = False,
                 collect_verdicts: bool = False):
        self.config = config
        self.verify = verify
        #: Force static-verdict computation even when no range-based
        #: filter is enabled (``repro profile`` joins verdicts against
        #: dynamic counts regardless of the profiled configuration).
        self.collect_verdicts = collect_verdicts
        self.statistics = TargetStatistics()
        self.per_function: Dict[str, TargetStatistics] = {}
        #: site id -> static provenance of the emitted check (joined
        #: with the dynamic per-site counters by ``repro profile``).
        self.check_sites: Dict[str, CheckSiteInfo] = {}
        #: site id -> static safety verdict ("proven-safe" /
        #: "proven-violating" / "unknown") over the *gathered* checks,
        #: populated whenever the range analysis runs; ``repro lint``
        #: and ``repro profile`` join against it.
        self.check_verdicts: Dict[str, str] = {}

    def run(self, module: Module) -> None:
        mechanism = create_mechanism(self.config)
        if mechanism is None:
            return
        mechanism.prepare_module(module)
        # One summary table serves the whole module: the range filter's
        # interprocedural component memoizes per-callee return ranges.
        needs_ranges = (self.config.opt_ranges or self.config.opt_hoist
                        or self.collect_verdicts)
        summaries = ReturnSummaries(module) if needs_ranges else None
        for fn in list(module.functions.values()):
            if fn.native or fn.is_declaration:
                continue
            if "mi_ignore" in fn.attributes:
                continue
            self._instrument_function(mechanism, fn, summaries)
        self.check_sites.update(mechanism.site_infos)
        if self.verify:
            verify_module(module)

    def _instrument_function(
        self,
        mechanism: InstrumentationMechanism,
        fn: Function,
        summaries: Optional[ReturnSummaries] = None,
    ) -> None:
        mechanism.prepare_function(fn)
        targets = gather_function_targets(fn)
        stats = TargetStatistics()
        for target in targets:
            stats.count(target)
        # One range analysis serves the range filter, the hoist
        # filter's >=1-iteration proofs, and the static verdicts.
        analysis: Optional[FunctionRangeAnalysis] = None
        if (self.config.opt_ranges or self.config.opt_hoist
                or self.collect_verdicts):
            analysis = FunctionRangeAnalysis(fn, summaries)
            verdicts = check_verdicts(fn, targets, summaries, analysis)
            self.check_verdicts.update(verdicts)
            for verdict in verdicts.values():
                stats.verdicts[verdict] = stats.verdicts.get(verdict, 0) + 1
        if self.config.opt_dominance:
            targets, removed = dominance_filter(fn, targets)
            stats.filtered_checks = removed
        if self.config.opt_ranges:
            targets, removed = range_filter(fn, targets, summaries, analysis)
            stats.range_filtered_checks = removed
        if self.config.opt_hoist and self.config.insert_deref_checks:
            targets, hoisted, coalesced, synthesized = hoist_filter(
                fn, targets, summaries, analysis)
            stats.hoisted_checks = hoisted
            stats.coalesced_checks = coalesced
            stats.synthesized_checks = synthesized
        mechanism.instrument_function(fn, targets)
        self.per_function[fn.name] = stats
        self.statistics.merge(stats)


def instrument_module(
    module: Module, config: InstrumentationConfig, verify: bool = False
) -> MemInstrumentPass:
    """Instrument a module in place; returns the pass (for statistics)."""
    pass_ = MemInstrumentPass(config, verify)
    pass_.run(module)
    return pass_


def make_instrumenter(
    config: InstrumentationConfig, verify: bool = False,
    collect_verdicts: bool = False,
) -> "InstrumenterHandle":
    """An instrumentation callback for
    :func:`repro.opt.pipeline.build_pipeline`'s ``instrument`` hook."""
    return InstrumenterHandle(config, verify, collect_verdicts)


class InstrumenterHandle:
    def __init__(self, config: InstrumentationConfig, verify: bool,
                 collect_verdicts: bool = False):
        self.pass_ = MemInstrumentPass(config, verify, collect_verdicts)
        self.ran = False

    def __call__(self, module: Module) -> None:
        self.pass_.run(module)
        self.ran = True

    @property
    def statistics(self) -> TargetStatistics:
        return self.pass_.statistics

    @property
    def per_function(self) -> Dict[str, TargetStatistics]:
        return self.pass_.per_function

    @property
    def check_sites(self) -> Dict[str, CheckSiteInfo]:
        return self.pass_.check_sites

    @property
    def check_verdicts(self) -> Dict[str, str]:
        return self.pass_.check_verdicts

"""Instrumentation configuration.

Mirrors the MemInstrument command-line flags documented in the paper's
artifact appendix (Section A.6):

* ``-mi-config=softbound`` / ``-mi-config=lowfat`` -> ``approach``
* ``-mi-mode=geninvariants`` -> ``mode`` (metadata/invariant
  propagation only, no dereference checks; the "metadata" series of
  Figures 10 and 11)
* ``-mi-opt-dominance`` -> ``opt_dominance`` (the check-elimination
  filter of Section 5.3)
* ``-mi-opt-ranges`` -> ``opt_ranges`` (range-analysis based check
  elimination; a reproduction extension beyond the paper's artifact,
  composed after the dominance filter)
* ``-mi-opt-hoist`` -> ``opt_hoist`` (loop-aware check hoisting and
  block-level coalescing; a reproduction extension composed after the
  dominance and range filters)
* ``-mi-sb-size-zero-wide-upper`` -> wide upper bounds for size-less
  extern array declarations (Section 4.3)
* ``-mi-sb-inttoptr-wide-bounds`` -> wide bounds for integer-to-pointer
  casts (Section 4.4)
* ``-mi-lf-transform-common-to-weak-linkage`` -> Low-Fat linkage fix
* ``-mi-policy-ignore-inline-asm`` -> accepted for CLI parity (the
  mini-IR has no inline assembly)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List

from ..errors import ConfigError

MODES = ("full", "geninvariants")


def _approaches():
    # Lazy: the registry lives in .mechanism, which imports this
    # module for the InstrumentationConfig type.
    from .mechanism import mechanism_names

    return mechanism_names()


def __getattr__(name):
    # Historical constant; the registry is the source of truth now.
    if name == "APPROACHES":
        return _approaches()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class InstrumentationConfig:
    approach: str = "softbound"
    mode: str = "full"
    opt_dominance: bool = False
    opt_ranges: bool = False
    opt_hoist: bool = False
    sb_size_zero_wide_upper: bool = True
    sb_inttoptr_wide_bounds: bool = True
    sb_missing_metadata_wide: bool = False
    sb_wrapper_checks: bool = False
    lf_transform_common_to_weak_linkage: bool = True
    policy_ignore_inline_asm: bool = True

    def __post_init__(self) -> None:
        if self.approach not in _approaches():
            raise ConfigError(
                f"unknown approach {self.approach!r} (registered "
                f"mechanisms: {', '.join(_approaches())})")
        if self.mode not in MODES:
            raise ConfigError(f"unknown mode {self.mode!r}")

    @property
    def insert_deref_checks(self) -> bool:
        return self.mode == "full"

    def with_(self, **kwargs) -> "InstrumentationConfig":
        return replace(self, **kwargs)

    @staticmethod
    def softbound(**kwargs) -> "InstrumentationConfig":
        """The paper's SoftBound configuration basis (Section A.6)."""
        defaults = dict(
            approach="softbound",
            sb_size_zero_wide_upper=True,
            sb_inttoptr_wide_bounds=True,
        )
        defaults.update(kwargs)
        return InstrumentationConfig(**defaults)

    @staticmethod
    def lowfat(**kwargs) -> "InstrumentationConfig":
        """The paper's Low-Fat Pointers configuration basis."""
        defaults = dict(
            approach="lowfat",
            lf_transform_common_to_weak_linkage=True,
        )
        defaults.update(kwargs)
        return InstrumentationConfig(**defaults)

    @staticmethod
    def from_flags(flags: Iterable[str]) -> "InstrumentationConfig":
        """Parse the artifact's flag syntax into a configuration.

        The framework-level flags (``-mi-config=``, ``-mi-mode=``, the
        check-elimination filters, and policies) are handled here;
        every mechanism-specific flag is resolved through the handlers
        the mechanisms registered in :mod:`.mechanism`, so a new
        mechanism's flags parse without touching this module."""
        from .mechanism import handle_mechanism_flag

        kwargs = {}
        for flag in flags:
            if flag.startswith("-mi-config="):
                kwargs["approach"] = flag.split("=", 1)[1]
            elif flag.startswith("-mi-mode="):
                kwargs["mode"] = flag.split("=", 1)[1]
            elif flag == "-mi-opt-dominance":
                kwargs["opt_dominance"] = True
            elif flag == "-mi-opt-ranges":
                kwargs["opt_ranges"] = True
            elif flag == "-mi-opt-hoist":
                kwargs["opt_hoist"] = True
            elif flag == "-mi-policy-ignore-inline-asm":
                kwargs["policy_ignore_inline_asm"] = True
            elif not handle_mechanism_flag(flag, kwargs):
                raise ConfigError(f"unknown MemInstrument flag {flag!r}")
        return InstrumentationConfig(**kwargs)

"""The SoftBound mechanism: lowering ITargets to SoftBound code.

Follows Table 1's SoftBound column:

* dereference checks compare the pointer against its (base, bound)
  witness (Figure 2);
* witnesses propagate as pairs of ``i64`` SSA values: allocations yield
  them directly, phis/selects get companion phis/selects, geps and
  bitcasts inherit the source pointer's witness;
* pointers loaded from memory take their bounds from the **trie**,
  keyed by the loaded-from address; pointer stores update the trie;
* pointer arguments and return values travel over the **shadow stack**;
* calls to the supported C standard library are redirected to wrappers
  that maintain metadata (Figure 6);
* integer-to-pointer casts get wide or NULL bounds depending on
  ``sb_inttoptr_wide_bounds`` (Section 4.4);
* size-less extern array declarations get a wide upper bound under
  ``sb_size_zero_wide_upper`` (Section 4.3) -- the source of Table 2's
  unchecked accesses for gzip-like code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Function, GlobalVariable, Module
from ..ir.types import I64, IntType, PointerType, size_of
from ..ir.values import Argument, Constant, ConstantInt, ConstantNull, UndefValue, Value
from ..softbound.runtime import WRAPPED_FUNCTIONS
from .itarget import CheckSiteInfo, ITarget, TargetKind
from .mechanism import (
    InstrumentationMechanism,
    RUNTIME_DECLARATIONS,
    WIDE_BOUND_INT,
    register_mechanism,
    set_flag,
)

Witness = Tuple[Value, Value]  # (base, bound), both i64


class SoftBoundMechanism(InstrumentationMechanism):
    name = "softbound"

    def __init__(self, config):
        super().__init__(config)
        self._memo: Dict[int, Witness] = {}
        self._fn: Optional[Function] = None

    # ------------------------------------------------------------------
    # module preparation
    # ------------------------------------------------------------------
    def prepare_module(self, module: Module) -> None:
        super().prepare_module(module)
        for name in RUNTIME_DECLARATIONS:
            if name.startswith("__sb_"):
                self.declare_runtime(module, name)
        self._install_wrappers(module)

    def _install_wrappers(self, module: Module) -> None:
        """Redirect calls to wrapped libc functions to their SoftBound
        wrappers (paper Figure 6)."""
        for fn in list(module.functions.values()):
            if fn.is_declaration and not fn.native:
                continue
            for inst in list(fn.instructions()):
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee_function
                if callee is None or not callee.native:
                    continue
                if callee.name in WRAPPED_FUNCTIONS:
                    wrapper = module.get_or_declare_function(
                        f"__sb_wrap_{callee.name}", callee.fnty,
                        callee.attributes,
                    )
                    wrapper.native = True
                    inst.set_operand(0, wrapper)

    # ------------------------------------------------------------------
    # function instrumentation
    # ------------------------------------------------------------------
    def instrument_function(self, fn: Function, targets: List[ITarget]) -> None:
        self._fn = fn
        self._memo = {}
        for target in targets:
            if target.kind == TargetKind.CHECK_DEREF:
                if self.config.insert_deref_checks:
                    self._lower_check(target)
            elif target.kind == TargetKind.INVARIANT_STORE:
                self._lower_store_invariant(target)
            elif target.kind == TargetKind.INVARIANT_CALL:
                self._lower_call_invariant(target)
            elif target.kind == TargetKind.INVARIANT_RET:
                self._lower_ret_invariant(target)
            # INVARIANT_CAST: SoftBound does not act on ptrtoint.

    # -- lowering ---------------------------------------------------------
    def _lower_check(self, target: ITarget) -> None:
        builder = self.marked_builder(self._fn)
        base, bound = self._witness(target.pointer)
        builder.position_before(target.instruction)
        p64 = builder.ptrtoint(target.pointer, I64)
        # Hoisted checks cover a symbolic extent (the loop's accessed
        # byte count, computed in the preheader) instead of a constant.
        width = target.width_value or ConstantInt(I64, target.width)
        check = builder.call(
            self.module.get_function("__sb_check"),
            [p64, width, base, bound],
        )
        check.meta["mi_site"] = target.site
        source, wide_hint = self._classify_pointer(target.pointer)
        self.site_infos[target.site] = CheckSiteInfo(
            site=target.site,
            function=self._fn.name,
            kind="deref",
            mechanism=self.name,
            line=target.instruction.meta.get("line"),
            source=source,
            wide_hint=wide_hint,
        )

    def _classify_pointer(self, pointer: Value) -> Tuple[str, str]:
        """Static provenance of a checked pointer: what produced it and
        whether its witness is statically known to be (possibly) wide --
        the measured counterpart of Table 2's attribution column."""
        seen = set()
        while id(pointer) not in seen:
            seen.add(id(pointer))
            if isinstance(pointer, GEP):
                pointer = pointer.pointer
                continue
            if isinstance(pointer, Cast) and pointer.opcode == "bitcast" \
                    and isinstance(pointer.value.type, PointerType):
                pointer = pointer.value
                continue
            break
        if isinstance(pointer, Cast) and pointer.opcode == "inttoptr":
            if self.config.sb_inttoptr_wide_bounds:
                return ("inttoptr", "inttoptr-roundtrip")
            return ("inttoptr", "")
        if isinstance(pointer, GlobalVariable):
            if (pointer.declared_without_size
                    and self.config.sb_size_zero_wide_upper):
                return ("global", "sizeless-extern-array")
            return ("global", "")
        if isinstance(pointer, Alloca):
            return ("alloca", "")
        if isinstance(pointer, Load):
            return ("trie-load", "")
        if isinstance(pointer, Call):
            return ("call-result", "")
        if isinstance(pointer, Argument):
            return ("argument", "")
        if isinstance(pointer, (Phi, Select)):
            return ("phi-or-select", "")
        if isinstance(pointer, Function):
            return ("function-pointer", "function-pointer")
        if isinstance(pointer, (ConstantNull, UndefValue)):
            return ("null", "")
        return ("unknown", "unknown-producer")

    def _lower_store_invariant(self, target: ITarget) -> None:
        store = target.instruction
        assert isinstance(store, Store)
        base, bound = self._witness(store.value)
        builder = self.marked_builder(self._fn)
        builder.position_before(store)
        location = builder.ptrtoint(store.pointer, I64)
        builder.call(
            self.module.get_function("__sb_trie_store"), [location, base, bound]
        )

    def _lower_call_invariant(self, target: ITarget) -> None:
        call = target.instruction
        assert isinstance(call, Call)
        ptr_args = [a for a in call.args if isinstance(a.type, PointerType)]
        builder = self.marked_builder(self._fn)
        if ptr_args:
            witnesses = [self._witness(a) for a in ptr_args]
            builder.position_before(call)
            builder.call(
                self.module.get_function("__sb_ss_enter"),
                [ConstantInt(I64, len(ptr_args))],
            )
            for index, (base, bound) in enumerate(witnesses):
                builder.call(
                    self.module.get_function("__sb_ss_set"),
                    [ConstantInt(I64, index), base, bound],
                )
        builder.position_after(call)
        if isinstance(call.type, PointerType) and id(call) not in self._memo:
            ret_base = builder.call(
                self.module.get_function("__sb_ss_get_ret_base"), []
            )
            ret_bound = builder.call(
                self.module.get_function("__sb_ss_get_ret_bound"), []
            )
            self._memo[id(call)] = (ret_base, ret_bound)
        if ptr_args:
            builder.call(self.module.get_function("__sb_ss_exit"), [])

    def _lower_ret_invariant(self, target: ITarget) -> None:
        ret = target.instruction
        assert isinstance(ret, Ret)
        base, bound = self._witness(ret.value)
        builder = self.marked_builder(self._fn)
        builder.position_before(ret)
        builder.call(
            self.module.get_function("__sb_ss_set_ret"), [base, bound]
        )

    # ------------------------------------------------------------------
    # witness materialization
    # ------------------------------------------------------------------
    def _witness(self, pointer: Value) -> Witness:
        key = id(pointer)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        witness = self._materialize(pointer)
        self._memo[key] = witness
        return witness

    def _materialize(self, pointer: Value) -> Witness:
        # Bounds-preserving derivations inherit the source's witness.
        if isinstance(pointer, GEP):
            return self._witness(pointer.pointer)
        if isinstance(pointer, Cast) and pointer.opcode == "bitcast":
            if isinstance(pointer.value.type, PointerType):
                return self._witness(pointer.value)
        if isinstance(pointer, Cast) and pointer.opcode == "inttoptr":
            if self.config.sb_inttoptr_wide_bounds:
                return self._wide()
            return self._null()
        if isinstance(pointer, Alloca):
            return self._alloca_witness(pointer)
        if isinstance(pointer, Load):
            return self._load_witness(pointer)
        if isinstance(pointer, Call):
            return self._call_witness(pointer)
        if isinstance(pointer, Phi):
            return self._phi_witness(pointer)
        if isinstance(pointer, Select):
            return self._select_witness(pointer)
        if isinstance(pointer, Argument):
            return self._argument_witness(pointer)
        if isinstance(pointer, GlobalVariable):
            return self._global_witness(pointer)
        if isinstance(pointer, (ConstantNull, UndefValue)):
            return self._null()
        if isinstance(pointer, Function):
            return self._wide()  # function pointers are not data objects
        # Unknown producer: be permissive rather than reject the program.
        return self._wide()

    def _wide(self) -> Witness:
        return (ConstantInt(I64, 0), ConstantInt(I64, WIDE_BOUND_INT))

    def _null(self) -> Witness:
        return (ConstantInt(I64, 0), ConstantInt(I64, 0))

    def _alloca_witness(self, alloca: Alloca) -> Witness:
        builder = self.marked_builder(self._fn)
        builder.position_after(alloca)
        base = builder.ptrtoint(alloca, I64)
        size: Value = ConstantInt(I64, size_of(alloca.allocated_type))
        if alloca.count is not None:
            count = alloca.count
            if isinstance(count.type, IntType) and count.type.bits < 64:
                count = builder.sext(count, I64)
            size = builder.mul(size, count)
        bound = builder.add(base, size)
        return (base, bound)

    def _load_witness(self, load: Load) -> Witness:
        """Pointer loaded from memory: bounds come from the trie, keyed
        by the address the pointer was loaded from (Section 3.2)."""
        builder = self.marked_builder(self._fn)
        builder.position_after(load)
        location = builder.ptrtoint(load.pointer, I64)
        base = builder.call(
            self.module.get_function("__sb_trie_load_base"), [location]
        )
        bound = builder.call(
            self.module.get_function("__sb_trie_load_bound"), [location]
        )
        return (base, bound)

    def _call_witness(self, call: Call) -> Witness:
        """Pointer returned from a call: bounds from the shadow-stack
        return slot.  Normally pre-populated by the call-invariant
        lowering; this path covers calls without pointer arguments."""
        builder = self.marked_builder(self._fn)
        builder.position_after(call)
        base = builder.call(self.module.get_function("__sb_ss_get_ret_base"), [])
        bound = builder.call(self.module.get_function("__sb_ss_get_ret_bound"), [])
        return (base, bound)

    def _phi_witness(self, phi: Phi) -> Witness:
        base_phi = Phi(I64, self._fn.next_name("sb.base"))
        bound_phi = Phi(I64, self._fn.next_name("sb.bound"))
        self.mark(base_phi)
        self.mark(bound_phi)
        block = phi.parent
        assert block is not None
        block.insert(0, bound_phi)
        block.insert(0, base_phi)
        # Pre-memoize to terminate witness cycles through loop phis.
        self._memo[id(phi)] = (base_phi, bound_phi)
        for value, pred in phi.incoming:
            base, bound = self._witness(value)
            base_phi.add_incoming(base, pred)
            bound_phi.add_incoming(bound, pred)
        return (base_phi, bound_phi)

    def _select_witness(self, select: Select) -> Witness:
        true_w = self._witness(select.true_value)
        false_w = self._witness(select.false_value)
        builder = self.marked_builder(self._fn)
        builder.position_after(select)
        base = builder.select(select.condition, true_w[0], false_w[0])
        bound = builder.select(select.condition, true_w[1], false_w[1])
        return (base, bound)

    def _argument_witness(self, arg: Argument) -> Witness:
        """Pointer parameter: bounds from the caller's shadow-stack
        frame (slot index = position among the pointer parameters)."""
        slot = 0
        for other in self._fn.args:
            if other is arg:
                break
            if isinstance(other.type, PointerType):
                slot += 1
        builder = self.marked_builder(self._fn)
        builder.position_at_start(self._fn.entry)
        base = builder.call(
            self.module.get_function("__sb_ss_get_base"), [ConstantInt(I64, slot)]
        )
        bound = builder.call(
            self.module.get_function("__sb_ss_get_bound"), [ConstantInt(I64, slot)]
        )
        return (base, bound)

    def _global_witness(self, gv: GlobalVariable) -> Witness:
        builder = self.marked_builder(self._fn)
        builder.position_at_start(self._fn.entry)
        base = builder.ptrtoint(gv, I64)
        if gv.declared_without_size:
            if self.config.sb_size_zero_wide_upper:
                return (base, ConstantInt(I64, WIDE_BOUND_INT))
            # NULL upper bound: every access through it reports.
            return (base, ConstantInt(I64, 0))
        bound = builder.add(base, ConstantInt(I64, size_of(gv.value_type)))
        return (base, bound)


def _softbound_runtime(config, lf_region_capacity=None):
    from ..softbound.runtime import SoftBoundRuntime

    return SoftBoundRuntime(
        missing_metadata_wide=config.sb_missing_metadata_wide,
        wrapper_checks=config.sb_wrapper_checks,
    )


register_mechanism(
    "softbound",
    factory=SoftBoundMechanism,
    flag_handlers={
        "-mi-sb-size-zero-wide-upper": set_flag("sb_size_zero_wide_upper"),
        "-mi-sb-inttoptr-wide-bounds": set_flag("sb_inttoptr_wide_bounds"),
        "-mi-sb-missing-metadata-wide": set_flag("sb_missing_metadata_wide"),
        "-mi-sb-wrapper-checks": set_flag("sb_wrapper_checks"),
    },
    runtime_factory=_softbound_runtime,
    description="SoftBound: disjoint (base, bound) metadata in a trie "
                "plus a shadow stack (paper Figure 2)",
)

"""ITarget gathering (paper Table 1, "Instrumentation Target" column).

Walks a function and produces the approach-independent list of
locations to instrument:

* every ``load``/``store`` pointer operand -> dereference check;
* every ``store`` of a *pointer-typed value* -> store invariant;
* every call with pointer arguments or a pointer result -> call
  invariant (skipping the instrumentation's own runtime intrinsics);
* every ``ret`` of a pointer -> return invariant;
* every ``ptrtoint`` cast -> cast invariant (used by Low-Fat).

Code the instrumentation inserted itself (``meta["mi"]``) is never
instrumented again.
"""

from __future__ import annotations

from typing import List

from ..ir.instructions import Call, Cast, Instruction, Load, Ret, Store
from ..ir.module import Function
from ..ir.types import PointerType, size_of
from .itarget import ITarget, TargetKind


def _is_mi_code(inst: Instruction) -> bool:
    return bool(inst.meta.get("mi"))


def _is_runtime_callee(call: Call) -> bool:
    fn = call.callee_function
    if fn is None:
        return False
    if fn.name.startswith("__sb_wrap_"):
        # libc wrappers take part in the shadow-stack protocol like any
        # other callee; they must not be skipped.
        return False
    return (
        fn.name.startswith("__sb_")
        or fn.name.startswith("__lf_")
        or fn.name.startswith("__mi_")
    )


def gather_function_targets(fn: Function) -> List[ITarget]:
    targets: List[ITarget] = []
    for block in fn.blocks:
        for index, inst in enumerate(block.instructions):
            if _is_mi_code(inst):
                continue
            site = f"{fn.name}:{block.name}:{index}"
            if isinstance(inst, Load):
                targets.append(
                    ITarget(
                        TargetKind.CHECK_DEREF, inst, inst.pointer,
                        width=size_of(inst.type), site=site,
                    )
                )
            elif isinstance(inst, Store):
                targets.append(
                    ITarget(
                        TargetKind.CHECK_DEREF, inst, inst.pointer,
                        width=size_of(inst.value.type), site=site,
                    )
                )
                if isinstance(inst.value.type, PointerType):
                    targets.append(
                        ITarget(
                            TargetKind.INVARIANT_STORE, inst, inst.value,
                            site=site,
                        )
                    )
            elif isinstance(inst, Call):
                if _is_runtime_callee(inst):
                    continue
                has_ptr_arg = any(
                    isinstance(a.type, PointerType) for a in inst.args
                )
                returns_ptr = isinstance(inst.type, PointerType)
                if has_ptr_arg or returns_ptr:
                    targets.append(
                        ITarget(TargetKind.INVARIANT_CALL, inst, None, site=site)
                    )
            elif isinstance(inst, Ret):
                if inst.value is not None and isinstance(
                    inst.value.type, PointerType
                ):
                    targets.append(
                        ITarget(
                            TargetKind.INVARIANT_RET, inst, inst.value, site=site
                        )
                    )
            elif isinstance(inst, Cast) and inst.opcode == "ptrtoint":
                targets.append(
                    ITarget(
                        TargetKind.INVARIANT_CAST, inst, inst.value, site=site
                    )
                )
    return targets

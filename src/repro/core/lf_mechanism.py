"""The Low-Fat Pointers mechanism: lowering ITargets to low-fat code.

Follows Table 1's Low-Fat column:

* dereference checks validate the pointer against its witness base
  using the region arithmetic of Figure 5 (``__lf_check``);
* ``malloc``/``calloc``/``realloc``/``free`` are redirected to the
  custom low-fat allocator; ``alloca`` is *replaced* by region-backed
  ``__lf_alloca`` ("mirror, replace"); globals are mirrored into the
  regions by the runtime's global placer;
* witnesses are base pointers: geps/bitcasts inherit them, phis and
  selects get companions, and pointers whose provenance crosses a
  function or memory boundary (loads, arguments, call results,
  inttoptr) *assume the in-bounds invariant* and recompute the base
  from the pointer value (``__lf_compute_base``);
* the invariant is established by escape checks
  (``__lf_invariant_check``) at stores, calls, returns and
  pointer-to-integer casts -- the behaviour that makes Low-Fat report
  out-of-bounds pointer *arithmetic*, not just accesses
  (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Function, GlobalVariable, Module
from ..ir.types import I64, IntType, PointerType, size_of
from ..ir.values import Argument, ConstantInt, ConstantNull, UndefValue, Value
from .itarget import CheckSiteInfo, ITarget, TargetKind
from .mechanism import (
    InstrumentationMechanism,
    RUNTIME_DECLARATIONS,
    register_mechanism,
    set_flag,
)

#: libc allocation entry points and their low-fat replacements.
ALLOCATOR_REPLACEMENTS = {
    "malloc": "__lf_malloc",
    "calloc": "__lf_calloc",
    "realloc": "__lf_realloc",
    "free": "__lf_free",
}


class LowFatMechanism(InstrumentationMechanism):
    name = "lowfat"

    def __init__(self, config):
        super().__init__(config)
        self._memo: Dict[int, Value] = {}
        self._fn: Optional[Function] = None

    # ------------------------------------------------------------------
    # module preparation
    # ------------------------------------------------------------------
    def prepare_module(self, module: Module) -> None:
        super().prepare_module(module)
        for name in RUNTIME_DECLARATIONS:
            if name.startswith("__lf_"):
                self.declare_runtime(module, name)
        self._replace_allocator_calls(module)
        if self.config.lf_transform_common_to_weak_linkage:
            for gv in module.globals.values():
                if gv.linkage == "common":
                    gv.linkage = "weak"

    def _replace_allocator_calls(self, module: Module) -> None:
        for fn in module.functions.values():
            for inst in list(fn.instructions()):
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee_function
                if callee is None or not callee.native:
                    continue
                replacement = ALLOCATOR_REPLACEMENTS.get(callee.name)
                if replacement is not None:
                    inst.set_operand(0, module.get_function(replacement))

    def prepare_function(self, fn: Function) -> None:
        """Replace every alloca by region-backed ``__lf_alloca``.

        Runs before target gathering so the checks see the replaced
        pointers."""
        self._fn = fn
        lf_alloca = self.module.get_function("__lf_alloca")
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, Alloca):
                    continue
                builder = self.marked_builder(fn)
                builder.position_before(inst)
                size: Value = ConstantInt(I64, size_of(inst.allocated_type))
                if inst.count is not None:
                    count = inst.count
                    if isinstance(count.type, IntType) and count.type.bits < 64:
                        count = builder.sext(count, I64)
                    size = builder.mul(size, count)
                raw = builder.call(lf_alloca, [size])
                typed = builder.bitcast(raw, inst.type)
                inst.replace_all_uses_with(typed)
                inst.erase_from_parent()

    # ------------------------------------------------------------------
    # function instrumentation
    # ------------------------------------------------------------------
    def instrument_function(self, fn: Function, targets: List[ITarget]) -> None:
        self._fn = fn
        self._memo = {}
        for target in targets:
            if target.kind == TargetKind.CHECK_DEREF:
                if self.config.insert_deref_checks:
                    self._lower_check(target)
            elif target.kind == TargetKind.INVARIANT_STORE:
                self._lower_escape(target, target.pointer)
            elif target.kind == TargetKind.INVARIANT_CALL:
                call = target.instruction
                assert isinstance(call, Call)
                for arg in call.args:
                    if isinstance(arg.type, PointerType):
                        self._lower_escape(target, arg)
            elif target.kind == TargetKind.INVARIANT_RET:
                self._lower_escape(target, target.pointer)
            elif target.kind == TargetKind.INVARIANT_CAST:
                self._lower_escape(target, target.pointer)

    def _lower_check(self, target: ITarget) -> None:
        base = self._witness(target.pointer)
        builder = self.marked_builder(self._fn)
        builder.position_before(target.instruction)
        p64 = builder.ptrtoint(target.pointer, I64)
        # Hoisted checks cover a symbolic extent (the loop's accessed
        # byte count, computed in the preheader) instead of a constant.
        width = target.width_value or ConstantInt(I64, target.width)
        check = builder.call(
            self.module.get_function("__lf_check"),
            [p64, width, base],
        )
        check.meta["mi_site"] = target.site
        self._record_site(target, target.pointer, "deref")

    def _lower_escape(self, target: ITarget, pointer: Value) -> None:
        """Establish the in-bounds invariant for an escaping pointer."""
        base = self._witness(pointer)
        builder = self.marked_builder(self._fn)
        builder.position_before(target.instruction)
        p64 = builder.ptrtoint(pointer, I64)
        check = builder.call(
            self.module.get_function("__lf_invariant_check"), [p64, base]
        )
        check.meta["mi_site"] = target.site
        self._record_site(target, pointer, "invariant")

    def _record_site(self, target: ITarget, pointer: Value, kind: str) -> None:
        source, wide_hint = self._classify_pointer(pointer)
        self.site_infos[target.site] = CheckSiteInfo(
            site=target.site,
            function=self._fn.name,
            kind=kind,
            mechanism=self.name,
            line=target.instruction.meta.get("line"),
            source=source,
            wide_hint=wide_hint,
        )

    def _classify_pointer(self, pointer: Value):
        """Static provenance of a checked pointer under Low-Fat's
        witness rules: a base that ``__lf_compute_base`` recomputes can
        only go wide dynamically (non-low-fat allocation), whereas
        external globals and code pointers are wide by construction."""
        seen = set()
        while id(pointer) not in seen:
            seen.add(id(pointer))
            if isinstance(pointer, GEP):
                pointer = pointer.pointer
                continue
            if isinstance(pointer, Cast) and pointer.opcode == "bitcast" \
                    and isinstance(pointer.value.type, PointerType):
                pointer = pointer.value
                continue
            break
        if isinstance(pointer, GlobalVariable):
            if pointer.is_declaration:
                return ("external-global", "unmirrored-external-global")
            return ("global", "")
        if isinstance(pointer, Argument):
            return ("argument", "")
        if isinstance(pointer, (Phi, Select)):
            return ("phi-or-select", "")
        if isinstance(pointer, Function):
            return ("function-pointer", "function-pointer")
        if isinstance(pointer, Cast) and pointer.opcode == "inttoptr":
            return ("inttoptr", "")
        if isinstance(pointer, (ConstantNull, UndefValue)):
            return ("null", "")
        if isinstance(pointer, Instruction):
            return ("recomputed-base", "")
        return ("unknown", "unknown-producer")

    # ------------------------------------------------------------------
    # witness materialization: the base pointer
    # ------------------------------------------------------------------
    def _witness(self, pointer: Value) -> Value:
        key = id(pointer)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        witness = self._materialize(pointer)
        self._memo[key] = witness
        return witness

    def _materialize(self, pointer: Value) -> Value:
        if isinstance(pointer, GEP):
            return self._witness(pointer.pointer)
        if isinstance(pointer, Cast) and pointer.opcode == "bitcast":
            if isinstance(pointer.value.type, PointerType):
                return self._witness(pointer.value)
        if isinstance(pointer, (ConstantNull, UndefValue)):
            return ConstantInt(I64, 0)
        if isinstance(pointer, Phi):
            return self._phi_witness(pointer)
        if isinstance(pointer, Select):
            return self._select_witness(pointer)
        if isinstance(pointer, Argument):
            return self._compute_base_at_entry(pointer)
        if isinstance(pointer, GlobalVariable):
            return self._compute_base_at_entry(pointer)
        if isinstance(pointer, Function):
            return ConstantInt(I64, 0)  # code pointers: wide
        if isinstance(pointer, Instruction):
            # Loads, call results, inttoptr casts, __lf_alloca /
            # __lf_malloc results: rely on the in-bounds invariant and
            # recompute the base from the pointer value (Figure 4).
            return self._compute_base_after(pointer)
        return ConstantInt(I64, 0)

    def _compute_base_after(self, pointer: Instruction) -> Value:
        builder = self.marked_builder(self._fn)
        builder.position_after(pointer)
        p64 = builder.ptrtoint(pointer, I64)
        return builder.call(
            self.module.get_function("__lf_compute_base"), [p64]
        )

    def _compute_base_at_entry(self, pointer: Value) -> Value:
        builder = self.marked_builder(self._fn)
        builder.position_at_start(self._fn.entry)
        p64 = builder.ptrtoint(pointer, I64)
        return builder.call(
            self.module.get_function("__lf_compute_base"), [p64]
        )

    def _phi_witness(self, phi: Phi) -> Value:
        base_phi = Phi(I64, self._fn.next_name("lf.base"))
        self.mark(base_phi)
        block = phi.parent
        assert block is not None
        block.insert(0, base_phi)
        self._memo[id(phi)] = base_phi  # terminate cycles through loops
        for value, pred in phi.incoming:
            base_phi.add_incoming(self._witness(value), pred)
        return base_phi

    def _select_witness(self, select: Select) -> Value:
        true_base = self._witness(select.true_value)
        false_base = self._witness(select.false_value)
        builder = self.marked_builder(self._fn)
        builder.position_after(select)
        return builder.select(select.condition, true_base, false_base)


def _lowfat_runtime(config, lf_region_capacity=None):
    from ..lowfat.runtime import LowFatRuntime

    return LowFatRuntime(region_capacity=lf_region_capacity)


register_mechanism(
    "lowfat",
    factory=LowFatMechanism,
    flag_handlers={
        "-mi-lf-transform-common-to-weak-linkage":
            set_flag("lf_transform_common_to_weak_linkage"),
    },
    runtime_factory=_lowfat_runtime,
    description="Low-Fat Pointers: pointer-derivable bounds via "
                "size-class regions (paper Figure 5)",
)

"""Instrumentation mechanism base class and runtime declarations.

A *mechanism* (paper Section 3) lowers the approach-independent
ITargets into concrete code: witness materialization, check calls,
metadata updates.  Both mechanisms mark every instruction they insert
with ``meta["mi"]`` so gathering never re-instruments inserted code,
and tag check calls with ``meta["mi_site"]`` so the VM attributes
dynamic check statistics to source-level sites (Table 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import Instruction
from ..ir.module import Function, Module
from ..ir.types import FunctionType, I64, I8, PointerType, VOID, ptr
from ..ir.values import Value
from .config import InstrumentationConfig
from .itarget import CheckSiteInfo, ITarget

I8P = ptr(I8)

#: name -> (signature, attributes) for every runtime function either
#: mechanism may call.  ``readnone``/``readonly`` drive the optimizer
#: (trie loads are CSE-able and DCE-able; checks are ``may_abort`` and
#: can only be removed by the dominated-duplicate rule).
RUNTIME_DECLARATIONS: Dict[str, Tuple[FunctionType, frozenset]] = {
    # SoftBound.  Checks are calls to external runtime functions with
    # *no* memory attributes: like in the paper's setting, the compiler
    # must assume they may write memory and may not return, so they act
    # as barriers for load CSE and code motion -- the mechanism behind
    # the extension-point gap of Figures 12/13 (Section 5.5).  Metadata
    # *loads*, in contrast, model the inlined lookup sequences and stay
    # readonly/readnone, so unused ones are dead-code-eliminated
    # (the Section 5.4 observation).
    "__sb_check": (FunctionType(VOID, [I64, I64, I64, I64]),
                   frozenset({"mi_check", "may_abort"})),
    "__sb_trie_load_base": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_trie_load_bound": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_trie_store": (FunctionType(VOID, [I64, I64, I64]), frozenset()),
    "__sb_ss_enter": (FunctionType(VOID, [I64]), frozenset()),
    "__sb_ss_exit": (FunctionType(VOID, []), frozenset()),
    "__sb_ss_set": (FunctionType(VOID, [I64, I64, I64]), frozenset()),
    "__sb_ss_get_base": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_ss_get_bound": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_ss_set_ret": (FunctionType(VOID, [I64, I64]), frozenset()),
    "__sb_ss_get_ret_base": (FunctionType(I64, []), frozenset({"readonly"})),
    "__sb_ss_get_ret_bound": (FunctionType(I64, []), frozenset({"readonly"})),
    # Low-Fat Pointers (checks are barriers, see above)
    "__lf_check": (FunctionType(VOID, [I64, I64, I64]),
                   frozenset({"mi_check", "may_abort"})),
    "__lf_invariant_check": (FunctionType(VOID, [I64, I64]),
                             frozenset({"mi_check", "may_abort"})),
    "__lf_compute_base": (FunctionType(I64, [I64]), frozenset({"readnone"})),
    "__lf_malloc": (FunctionType(I8P, [I64]), frozenset()),
    "__lf_calloc": (FunctionType(I8P, [I64, I64]), frozenset()),
    "__lf_realloc": (FunctionType(I8P, [I8P, I64]), frozenset()),
    "__lf_free": (FunctionType(VOID, [I8P]), frozenset()),
    "__lf_alloca": (FunctionType(I8P, [I64]), frozenset()),
}

WIDE_BOUND_INT = (1 << 64) - 1


class InstrumentationMechanism:
    """Base class for approach-specific target lowering."""

    name = "<mechanism>"

    def __init__(self, config: InstrumentationConfig):
        self.config = config
        self.module: Optional[Module] = None
        #: site id -> static provenance, filled while lowering checks;
        #: joined with RuntimeStats.per_site by ``repro profile``.
        self.site_infos: Dict[str, CheckSiteInfo] = {}

    # -- module/function hooks (orchestrated by instrument.py) -----------
    def prepare_module(self, module: Module) -> None:
        """Declare runtime functions, rewrite callees, adjust linkage."""
        self.module = module

    def prepare_function(self, fn: Function) -> None:
        """Per-function rewriting that must precede target gathering
        (e.g. Low-Fat's alloca replacement)."""

    def instrument_function(self, fn: Function, targets: List[ITarget]) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    def declare_runtime(self, module: Module, name: str) -> Function:
        fnty, attrs = RUNTIME_DECLARATIONS[name]
        fn = module.get_or_declare_function(name, fnty, attrs)
        fn.native = True
        return fn

    @staticmethod
    def mark(inst: Instruction, site: Optional[str] = None) -> Instruction:
        """Tag an inserted instruction as instrumentation code."""
        inst.meta["mi"] = True
        if site is not None:
            inst.meta["mi_site"] = site
        return inst

    def marked_builder(self, fn: Function) -> "MarkingBuilder":
        return MarkingBuilder(fn)


class MarkingBuilder(IRBuilder):
    """An IRBuilder that tags every inserted instruction with
    ``meta["mi"]``."""

    def __init__(self, fn: Function):
        super().__init__()
        self._fn = fn

    def insert(self, inst: Instruction) -> Instruction:
        inst.meta["mi"] = True
        return super().insert(inst)

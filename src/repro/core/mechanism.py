"""Instrumentation mechanism base class and runtime declarations.

A *mechanism* (paper Section 3) lowers the approach-independent
ITargets into concrete code: witness materialization, check calls,
metadata updates.  Both mechanisms mark every instruction they insert
with ``meta["mi"]`` so gathering never re-instruments inserted code,
and tag check calls with ``meta["mi_site"]`` so the VM attributes
dynamic check statistics to source-level sites (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from ..ir.builder import IRBuilder
from ..ir.instructions import Instruction
from ..ir.module import Function, Module
from ..ir.types import FunctionType, I64, I8, PointerType, VOID, ptr
from ..ir.values import Value
from .config import InstrumentationConfig
from .itarget import CheckSiteInfo, ITarget

I8P = ptr(I8)

#: name -> (signature, attributes) for every runtime function either
#: mechanism may call.  ``readnone``/``readonly`` drive the optimizer
#: (trie loads are CSE-able and DCE-able; checks are ``may_abort`` and
#: can only be removed by the dominated-duplicate rule).
RUNTIME_DECLARATIONS: Dict[str, Tuple[FunctionType, frozenset]] = {
    # SoftBound.  Checks are calls to external runtime functions with
    # *no* memory attributes: like in the paper's setting, the compiler
    # must assume they may write memory and may not return, so they act
    # as barriers for load CSE and code motion -- the mechanism behind
    # the extension-point gap of Figures 12/13 (Section 5.5).  Metadata
    # *loads*, in contrast, model the inlined lookup sequences and stay
    # readonly/readnone, so unused ones are dead-code-eliminated
    # (the Section 5.4 observation).
    "__sb_check": (FunctionType(VOID, [I64, I64, I64, I64]),
                   frozenset({"mi_check", "may_abort"})),
    "__sb_trie_load_base": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_trie_load_bound": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_trie_store": (FunctionType(VOID, [I64, I64, I64]), frozenset()),
    "__sb_ss_enter": (FunctionType(VOID, [I64]), frozenset()),
    "__sb_ss_exit": (FunctionType(VOID, []), frozenset()),
    "__sb_ss_set": (FunctionType(VOID, [I64, I64, I64]), frozenset()),
    "__sb_ss_get_base": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_ss_get_bound": (FunctionType(I64, [I64]), frozenset({"readonly"})),
    "__sb_ss_set_ret": (FunctionType(VOID, [I64, I64]), frozenset()),
    "__sb_ss_get_ret_base": (FunctionType(I64, []), frozenset({"readonly"})),
    "__sb_ss_get_ret_bound": (FunctionType(I64, []), frozenset({"readonly"})),
    # Low-Fat Pointers (checks are barriers, see above)
    "__lf_check": (FunctionType(VOID, [I64, I64, I64]),
                   frozenset({"mi_check", "may_abort"})),
    "__lf_invariant_check": (FunctionType(VOID, [I64, I64]),
                             frozenset({"mi_check", "may_abort"})),
    "__lf_compute_base": (FunctionType(I64, [I64]), frozenset({"readnone"})),
    "__lf_malloc": (FunctionType(I8P, [I64]), frozenset()),
    "__lf_calloc": (FunctionType(I8P, [I64, I64]), frozenset()),
    "__lf_realloc": (FunctionType(I8P, [I8P, I64]), frozenset()),
    "__lf_free": (FunctionType(VOID, [I8P]), frozenset()),
    "__lf_alloca": (FunctionType(I8P, [I64]), frozenset()),
}

WIDE_BOUND_INT = (1 << 64) - 1


class InstrumentationMechanism:
    """Base class for approach-specific target lowering."""

    name = "<mechanism>"

    def __init__(self, config: InstrumentationConfig):
        self.config = config
        self.module: Optional[Module] = None
        #: site id -> static provenance, filled while lowering checks;
        #: joined with RuntimeStats.per_site by ``repro profile``.
        self.site_infos: Dict[str, CheckSiteInfo] = {}

    # -- module/function hooks (orchestrated by instrument.py) -----------
    def prepare_module(self, module: Module) -> None:
        """Declare runtime functions, rewrite callees, adjust linkage."""
        self.module = module

    def prepare_function(self, fn: Function) -> None:
        """Per-function rewriting that must precede target gathering
        (e.g. Low-Fat's alloca replacement)."""

    def instrument_function(self, fn: Function, targets: List[ITarget]) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    def declare_runtime(self, module: Module, name: str) -> Function:
        fnty, attrs = RUNTIME_DECLARATIONS[name]
        fn = module.get_or_declare_function(name, fnty, attrs)
        fn.native = True
        return fn

    @staticmethod
    def mark(inst: Instruction, site: Optional[str] = None) -> Instruction:
        """Tag an inserted instruction as instrumentation code."""
        inst.meta["mi"] = True
        if site is not None:
            inst.meta["mi_site"] = site
        return inst

    def marked_builder(self, fn: Function) -> "MarkingBuilder":
        return MarkingBuilder(fn)


class MarkingBuilder(IRBuilder):
    """An IRBuilder that tags every inserted instruction with
    ``meta["mi"]``."""

    def __init__(self, fn: Function):
        super().__init__()
        self._fn = fn

    def insert(self, inst: Instruction) -> Instruction:
        inst.meta["mi"] = True
        return super().insert(inst)


# ----------------------------------------------------------------------
# The mechanism registry.
#
# Every instrumentation approach is described once, here, by a
# :class:`MechanismRegistration`: how to build the compile-time
# mechanism from a configuration, which ``-mi-*`` flags belong to it,
# and how to build the VM runtime that its instrumented code calls
# into.  ``InstrumentationConfig.from_flags``, the pass orchestrator in
# :mod:`.instrument`, :func:`repro.driver.make_vm`, and the campaign
# layer's instance resolution all consult the registry instead of
# hardcoding approach names -- adding a mechanism (MESH, CGuard, ...) is
# one ``register_mechanism`` call in its module, with no edits to core
# dispatch, flag parsing, the CLI, or the experiment modules.

#: A flag handler mutates the ``InstrumentationConfig`` kwargs dict
#: that ``from_flags`` is accumulating.
FlagHandler = Callable[[Dict[str, object]], None]


def set_flag(key: str, value: object = True) -> FlagHandler:
    """The common case: a boolean ``-mi-*`` switch setting one field."""
    def handler(kwargs: Dict[str, object]) -> None:
        kwargs[key] = value
    return handler


@dataclass(frozen=True)
class MechanismRegistration:
    """One registered instrumentation approach."""

    name: str
    #: config -> mechanism instance (None for approaches that insert
    #: no instrumentation, i.e. noop).
    factory: Callable[[InstrumentationConfig],
                      Optional["InstrumentationMechanism"]]
    #: exact ``-mi-*`` flag spelling -> kwargs mutation.
    flag_handlers: Mapping[str, FlagHandler] = field(default_factory=dict)
    #: (config, lf_region_capacity) -> runtime object with
    #: ``.install(vm)``, or None when the approach needs no runtime.
    runtime_factory: Optional[Callable[..., object]] = None
    description: str = ""


_REGISTRY: Dict[str, MechanismRegistration] = {}
_BUILTINS_LOADED = False


def register_mechanism(
    name: str,
    factory: Callable[[InstrumentationConfig],
                      Optional["InstrumentationMechanism"]],
    flag_handlers: Optional[Mapping[str, FlagHandler]] = None,
    runtime_factory: Optional[Callable[..., object]] = None,
    description: str = "",
) -> MechanismRegistration:
    """Register an instrumentation approach under ``name``.

    Mechanisms self-register at import time (see the bottom of
    ``sb_mechanism.py`` / ``lf_mechanism.py``); re-registering a name
    is an error so two mechanisms can never shadow each other."""
    if name in _REGISTRY:
        raise ValueError(f"mechanism {name!r} is already registered")
    registration = MechanismRegistration(
        name=name,
        factory=factory,
        flag_handlers=dict(flag_handlers or {}),
        runtime_factory=runtime_factory,
        description=description,
    )
    _REGISTRY[name] = registration
    return registration


def _ensure_builtins() -> None:
    """Import the built-in mechanism modules for their registration
    side effect (mirrors the workload registry's lazy loading)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from . import lf_mechanism, sb_mechanism  # noqa: F401


def mechanism_names() -> Tuple[str, ...]:
    """All registered approach names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_mechanism(name: str) -> MechanismRegistration:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown approach {name!r} (registered mechanisms: "
            f"{', '.join(sorted(_REGISTRY))})") from None


def create_mechanism(
    config: InstrumentationConfig,
) -> Optional["InstrumentationMechanism"]:
    """Build the mechanism for ``config.approach`` (None for noop)."""
    return get_mechanism(config.approach).factory(config)


def handle_mechanism_flag(flag: str, kwargs: Dict[str, object]) -> bool:
    """Offer ``flag`` to every registered mechanism's handlers.

    Returns True when a handler claimed the flag (after mutating
    ``kwargs``); ``from_flags`` raises its ConfigError otherwise."""
    _ensure_builtins()
    for registration in _REGISTRY.values():
        handler = registration.flag_handlers.get(flag)
        if handler is not None:
            handler(kwargs)
            return True
    return False


def install_runtime(vm, config: InstrumentationConfig,
                    lf_region_capacity: Optional[int] = None) -> None:
    """Install the approach's VM runtime (no-op for runtimeless
    approaches)."""
    registration = get_mechanism(config.approach)
    if registration.runtime_factory is None:
        return
    runtime = registration.runtime_factory(
        config, lf_region_capacity=lf_region_capacity)
    runtime.install(vm)


# The noop approach is the registry's trivial member: no mechanism
# object, no flags, no runtime.
register_mechanism(
    "noop",
    factory=lambda config: None,
    description="uninstrumented baseline",
)

#!/usr/bin/env python3
"""Quickstart: compile a C program, instrument it, catch a bug.

Demonstrates the public API end to end:

1. compile a MiniC program at -O3 (uninstrumented baseline);
2. recompile with SoftBound and with Low-Fat Pointers plugged into the
   optimization pipeline;
3. run all three on the deterministic VM and compare runtime (cycles)
   and safety outcomes.

Run with:  python examples/quickstart.py
"""

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig

GOOD_PROGRAM = r"""
long checksum(int *data, int n) {
    long sum = 0;
    for (int i = 0; i < n; i++) sum = sum * 31 + data[i];
    return sum;
}

int main() {
    int n = 64;
    int *data = (int *) malloc(sizeof(int) * n);
    for (int i = 0; i < n; i++) data[i] = i * 7 % 23;
    print_i64(checksum(data, n));
    free((void*)data);
    return 0;
}
"""

# The same program with a classic off-by-255 heap overflow.
BAD_PROGRAM = GOOD_PROGRAM.replace(
    "for (int i = 0; i < n; i++) data[i] = i * 7 % 23;",
    "for (int i = 0; i <= n + 255; i++) data[i] = i * 7 % 23;",
)

CONFIGS = [
    ("baseline ", None),
    ("softbound", InstrumentationConfig.softbound(opt_dominance=True)),
    ("lowfat   ", InstrumentationConfig.lowfat(opt_dominance=True)),
]


def evaluate(title, source):
    print(f"== {title} ==")
    baseline_cycles = None
    for name, config in CONFIGS:
        if config is None:
            program = compile_program(source)
        else:
            program = compile_program(source, config)
        result = run_program(program, max_instructions=10_000_000)
        overhead = ""
        if config is None and result.ok:
            baseline_cycles = result.stats.cycles
        elif baseline_cycles:
            overhead = f"  ({result.stats.cycles / baseline_cycles:.2f}x)"
        print(f"  {name}: {result.describe():60.60s} "
              f"cycles={result.stats.cycles}{overhead}")
        if result.stats.checks_executed:
            print(f"             checks executed: {result.stats.checks_executed}"
                  f" ({result.stats.checks_wide} with wide bounds)")
    print()


def main():
    evaluate("correct program: identical output, modest overhead", GOOD_PROGRAM)
    evaluate("buggy program: heap overflow caught by both sanitizers",
             BAD_PROGRAM)


if __name__ == "__main__":
    main()

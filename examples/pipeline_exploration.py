#!/usr/bin/env python3
"""Explore how the compiler pipeline interacts with instrumentation.

For two contrasting workloads (pointer-chasing 183equake and
check-dense 186crafty), this example measures:

* the overhead of each approach at the three pipeline extension points
  (paper Figures 12/13: early instrumentation blocks optimization);
* the optimized / unoptimized / metadata-only configurations
  (paper Figures 10/11);
* where the cycles go (checks vs trie vs shadow stack).

Run with:  python examples/pipeline_exploration.py
"""

from repro.experiments.common import Runner
from repro.opt.pipeline import EXTENSION_POINTS
from repro.workloads import get

WORKLOADS = ("183equake", "186crafty")


def main():
    runner = Runner()
    for name in WORKLOADS:
        workload = get(name)
        base = runner.baseline(workload)
        print(f"== {name}: {workload.description}")
        print(f"   baseline: {base.cycles} cycles, output {base.output}")

        print("   extension points (overhead vs -O3):")
        for approach in ("softbound", "lowfat"):
            row = "  ".join(
                f"{ep.replace('Optimizer', 'Opt')}={runner.overhead(workload, approach, ep):.2f}x"
                for ep in EXTENSION_POINTS
            )
            print(f"     {approach:9s} {row}")

        print("   configurations (overhead vs -O3):")
        for approach in ("softbound", "lowfat"):
            opt = runner.overhead(workload, approach)
            unopt = runner.overhead(workload, f"{approach}-unopt")
            meta = runner.overhead(workload, f"{approach}-meta")
            print(f"     {approach:9s} optimized={opt:.2f}x "
                  f"unoptimized={unopt:.2f}x metadata-only={meta:.2f}x")

        print("   dynamic profile (optimized configs):")
        for approach in ("softbound", "lowfat"):
            r = runner.run(workload, approach)
            print(f"     {approach:9s} checks={r.checks_executed} "
                  f"invariant-checks={r.invariant_checks} "
                  f"trie={r.trie_loads}L/{r.trie_stores}S "
                  f"shadow-stack={r.shadow_stack_ops}")
        print()

    print("Reading the numbers:")
    print(" * equake loads row pointers in its hot loop: SoftBound pays a")
    print("   trie lookup per pointer load and loses to Low-Fat there.")
    print(" * crafty is check-dense integer code: SoftBound's shorter check")
    print("   sequence wins.")
    print(" * instrumenting at ModuleOptimizerEarly is slower than at the")
    print("   late points: checks block inlining, load CSE and LICM.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Section 4 usability case studies, executable.

Each case runs one small C program under SoftBound and Low-Fat Pointers
and prints which tool (wrongly or rightly) complains:

* out-of-bounds pointer arithmetic that is brought back in bounds
  (Section 4.2) -- valid-by-expectation C that Low-Fat rejects;
* the Figure 7 ``swap`` whose translation unit moves pointers through
  integer loads/stores -- SoftBound's trie goes stale, spurious report;
* a byte-wise pointer copy (Section 4.5) -- same failure, and the
  memcpy fix that repairs it;
* a >1 GiB allocation (Section 4.6) -- Low-Fat silently stops checking.

Run with:  python examples/usability_case_studies.py
"""

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig

SB = InstrumentationConfig.softbound()
LF = InstrumentationConfig.lowfat()


def verdict(result):
    if result.violation is not None:
        return f"REPORTS {result.violation.kind} violation"
    if result.fault is not None:
        return "crashes (hardware fault)"
    return f"runs fine, output {result.output}"


def show(title, sources, options=None, note=""):
    options = options or CompileOptions()
    print(f"-- {title}")
    if note:
        print(f"   {note}")
    for name, config in (("SoftBound", SB), ("Low-Fat  ", LF)):
        program = compile_program(sources, config, options)
        result = run_program(program, max_instructions=5_000_000)
        print(f"   {name}: {verdict(result)}")
    print()


def main():
    print("Usability case studies (paper Section 4)\n")

    show(
        "4.2: out-of-bounds pointer arithmetic, back in bounds before use",
        {
            "lib.c": "long use(int *p) { return p[1]; }",
            "main.c": r"""
                long use(int *p);
                int main() {
                    int *a = (int *) malloc(sizeof(int) * 8);
                    a[0] = 5;
                    print_i64(use(a - 1));   // 73% of C experts expect this to work
                    free((void*)a);
                    return 0;
                }""",
        },
        note="Low-Fat's escape invariant fires on the out-of-bounds "
             "pointer itself, before any access happens.",
    )

    swap_sources = {
        "swap.c": r"""
            void swap(double **one, double **two) {
                double *tmp = *one;
                *one = *two;
                *two = tmp;
            }""",
        "main.c": r"""
            void swap(double **one, double **two);
            double ga; double gb;
            int main() {
                double *pa = &ga; double *pb = &gb;
                ga = 1.5; gb = 2.5;
                swap(&pa, &pb);
                print_f64(*pa + *pb);
                return 0;
            }""",
    }
    show(
        "4.4 / Figure 7: swap compiled with integer-obfuscated pointer moves",
        swap_sources,
        options=CompileOptions(obfuscate_pointer_copies=["swap.c"]),
        note="One compiler version moves the pointers through i64 "
             "loads/stores; SoftBound's trie never sees the swap and "
             "keeps stale bounds.",
    )
    show(
        "4.4 control: the same swap, cleanly translated",
        swap_sources,
    )

    bytewise = r"""
        int main() {
            long x = 77;
            long *src = &x;
            long *dst;
            char *from = (char *) &src;
            char *to = (char *) &dst;
            for (int i = 0; i < 8; i++) to[i] = from[i];
            print_i64(*dst);
            return 0;
        }"""
    show(
        "4.5: byte-wise pointer copy (legal C, invisible to the trie)",
        {"main.c": bytewise},
    )
    show(
        "4.5 fixed: the same copy through memcpy (wrapper moves metadata)",
        {"main.c": bytewise.replace(
            "for (int i = 0; i < 8; i++) to[i] = from[i];",
            "memcpy((void*)to, (void*)from, 8);")},
    )

    huge = {
        "main.c": r"""
            int main() {
                char *big = (char *) malloc(1073741824);   // 1 GiB
                big[0] = 1;
                big[1073741823] = 2;
                print_i64(big[0] + big[1073741823]);
                free((void*)big);
                return 0;
            }""",
    }
    print("-- 4.6: one allocation above the largest low-fat class (1 GiB)")
    for name, config in (("SoftBound", SB), ("Low-Fat  ", LF)):
        program = compile_program(huge, config)
        result = run_program(program, max_instructions=5_000_000)
        wide = result.stats.checks_wide
        total = result.stats.checks_executed
        print(f"   {name}: {verdict(result)}; "
              f"{wide}/{total} checks used wide (unchecked) bounds")
    print("   (Low-Fat falls back to the standard allocator: the object "
          "is effectively unprotected, cf. Table 2's 429mcf.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate the paper's Table 2 for a chosen set of benchmarks.

Shows the per-site breakdown behind the headline percentages: which
source-level access sites executed with wide (unchecked) bounds, and
why (size-less extern arrays for SoftBound, the >1 GiB fallback for
Low-Fat Pointers).

Run with:  python examples/table2_unsafe_accesses.py [benchmark ...]
"""

import sys

from repro.driver import compile_program, make_vm, CompileOptions
from repro.experiments.common import config_for
from repro.workloads import all_names, get

DEFAULT_SET = ("164gzip", "429mcf", "433milc", "197parser")


def analyse(name):
    workload = get(name)
    print(f"== {name}: {workload.description}")
    for label in ("softbound", "lowfat"):
        config = config_for(label)
        options = CompileOptions(
            obfuscate_pointer_copies=tuple(workload.obfuscated_units)
        )
        program = compile_program(workload.sources, config, options)
        vm = make_vm(program, max_instructions=50_000_000)
        vm.run()
        stats = vm.stats
        print(f"   {label}: {stats.checks_executed} checks, "
              f"{stats.checks_wide} wide -> {stats.unsafe_percent:.2f}% unsafe")
        wide_sites = sorted(
            ((site, c) for site, c in stats.per_site.items() if c["wide"]),
            key=lambda item: -item[1]["wide"],
        )
        for site, counters in wide_sites[:5]:
            print(f"        wide at {site}: {counters['wide']}/{counters['executed']} executions")
        if not wide_sites:
            print("        every executed check had real bounds (*)")
    print()


def main():
    names = sys.argv[1:] or DEFAULT_SET
    for name in names:
        if name not in all_names():
            print(f"unknown benchmark {name!r}; choose from {all_names()}")
            return 1
        analyse(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
